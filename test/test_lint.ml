(* Tests for the static analyzer: one violating and one clean fixture
   per rule (R1 determinism, R2 forbidden constructs, R3 task purity,
   R4 fsync-before-rename, R5 interface coverage, R6 lock discipline,
   R7 resource lifetime), the interprocedural taint layer (R1 through
   call chains), the call graph itself, unused-allowlist (A0) and
   stale-baseline (B0) findings, parse-failure handling, a property
   test round-tripping the JSON and SARIF emitters, and an end-to-end
   assertion that the real repo tree produces zero findings from both
   layers. *)

let mkdir_p path =
  let rec go acc = function
    | [] -> ()
    | part :: rest ->
      let acc =
        if acc = "" then (if part = "" then "/" else part) else Filename.concat acc part
      in
      (if acc <> "/" && acc <> "" && not (Sys.file_exists acc) then
         try Unix.mkdir acc 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      go acc rest
  in
  go "" (String.split_on_char '/' path)

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

(* Build a throwaway source tree from (relative path, contents) pairs
   and run the analyzer over it. *)
let with_tree files f =
  let root = Filename.temp_dir "tilesched-lint" "" in
  Fun.protect
    ~finally:(fun () -> rm_rf root)
    (fun () ->
      List.iter
        (fun (rel, contents) ->
          mkdir_p (Filename.concat root (Filename.dirname rel));
          Out_channel.with_open_bin (Filename.concat root rel) (fun oc ->
              Out_channel.output_string oc contents))
        files;
      f root)

let scan files = with_tree files (fun root -> Lint.run ~root ())

let by_rule rule (report : Lint.report) =
  List.filter (fun f -> f.Lint.Finding.rule = rule) report.Lint.findings

let check_rule_count msg rule expected report =
  Alcotest.(check int) msg expected (List.length (by_rule rule report))

let contains ~needle hay =
  let n = String.length needle in
  let rec go i = i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* ---------- R1: determinism ---------- *)

let test_r1_violations () =
  let report =
    scan
      [
        ( "lib/tiling/clock.ml",
          "let now () = Unix.gettimeofday ()\n\
           let later () = Sys.time ()\n\
           let seed () = Random.self_init ()\n\
           let order t = Hashtbl.fold (fun k _ acc -> k :: acc) t []\n\
           let visit t = Hashtbl.iter (fun _ _ -> ()) t\n" );
        ("lib/tiling/clock.mli", "val now : unit -> float\n");
      ]
  in
  check_rule_count "five R1 findings" "R1" 5 report;
  let lines = List.map (fun f -> f.Lint.Finding.line) (by_rule "R1" report) in
  Alcotest.(check (list int)) "source order" [ 1; 2; 3; 4; 5 ] lines

let test_r1_sorted_fold_clean () =
  let report =
    scan
      [
        ( "lib/tiling/sorted.ml",
          "let order t = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t [])\n" );
        ("lib/tiling/sorted.mli", "val order : ('a, 'b) Hashtbl.t -> 'a list\n");
      ]
  in
  check_rule_count "sorted fold is ordered output" "R1" 0 report

let test_r1_allowlist () =
  (* Same constructs, but in the search engine where the staged
     deadline is a real wall-clock budget: the allowlist exempts them,
     and using the exemption keeps A0 quiet. *)
  let report =
    scan
      [
        ("lib/server/engine.ml", "let now () = Unix.gettimeofday ()\n");
        ("lib/server/engine.mli", "val now : unit -> float\n");
      ]
  in
  check_rule_count "allowlisted file" "R1" 0 report;
  check_rule_count "used entry is not stale" "A0" 0 report

(* ---------- R1': interprocedural determinism taint ---------- *)

let taint_tree seed_body =
  [
    ("lib/tiling/stamp.ml", seed_body);
    ("lib/tiling/stamp.mli", "val now : unit -> float\n");
    ("lib/tiling/mid.ml", "let elapsed t0 = Stamp.now () -. t0\n");
    ("lib/tiling/mid.mli", "val elapsed : float -> float\n");
    ("lib/tiling/top.ml", "let budget_left t0 b = b -. Mid.elapsed t0\n");
    ("lib/tiling/top.mli", "val budget_left : float -> float -> float\n");
  ]

let test_r1_taint_two_deep () =
  (* The seed is two helpers away from [budget_left]; only the typed
     layer can see that. *)
  let report = scan (taint_tree "let now () = Unix.gettimeofday ()\n") in
  check_rule_count "one direct + two transitive" "R1" 3 report;
  let via = List.filter (fun f -> contains ~needle:"call path" f.Lint.Finding.message) (by_rule "R1" report) in
  Alcotest.(check (list string))
    "tainted callers, at their call sites"
    [ "lib/tiling/mid.ml"; "lib/tiling/top.ml" ]
    (List.sort compare (List.map (fun f -> f.Lint.Finding.file) via));
  List.iter
    (fun f ->
      Alcotest.(check bool) "chain cites the seed" true
        (contains ~needle:"Unix.gettimeofday (seeded at lib/tiling/stamp.ml:1)" f.Lint.Finding.message))
    via

let test_r1_taint_clean_root () =
  (* Same call chain, but the root is deterministic: nothing to taint. *)
  let report =
    scan (taint_tree "let now () = float_of_int (int_of_string (Sys.getenv \"EPOCH\"))\n")
  in
  check_rule_count "no taint from a deterministic root" "R1" 0 report

let test_r1_taint_allowlisted_root () =
  (* A seed inside an allowlisted file never starts taint: sanctioned
     wall-clock use does not indict its callers. *)
  let report =
    scan
      [
        ("lib/server/engine.ml", "let now () = Unix.gettimeofday ()\n");
        ("lib/server/engine.mli", "val now : unit -> float\n");
        ("lib/tiling/user.ml", "let stale t0 = Engine.now () -. t0 > 1.0\n");
        ("lib/tiling/user.mli", "val stale : float -> bool\n");
      ]
  in
  check_rule_count "allowlisted root starts no taint" "R1" 0 report;
  check_rule_count "suppression counts as a use" "A0" 0 report

(* ---------- the call graph ---------- *)

let test_callgraph_three_modules () =
  with_tree
    [
      ("lib/m/alpha.ml", "let base x = x + 1\n");
      ("lib/m/beta.ml", "let mid x = Alpha.base (x * 2)\n");
      ("lib/m/gamma.ml", "let top x = Beta.mid (Alpha.base x)\nlet self y = if y = 0 then 1 else top y\n");
    ]
    (fun root ->
      let files = [ "lib/m/alpha.ml"; "lib/m/beta.ml"; "lib/m/gamma.ml" ] in
      let loaded = Lint.Typed_load.load ~root ~files in
      Alcotest.(check int) "all three typed" 3 (List.length loaded.Lint.Typed_load.typed);
      let g = Lint.Callgraph.build loaded.Lint.Typed_load.typed in
      let keys =
        List.sort compare
          (Array.to_list (Array.map (fun d -> d.Lint.Callgraph.def_key) g.Lint.Callgraph.defs))
      in
      Alcotest.(check (list string))
        "one node per top-level let"
        [ "Alpha.base"; "Beta.mid"; "Gamma.self"; "Gamma.top" ]
        keys;
      let def key =
        match Hashtbl.find_opt g.Lint.Callgraph.by_key key with
        | Some i -> g.Lint.Callgraph.defs.(i)
        | None -> Alcotest.failf "no def %s" key
      in
      let calls_of key =
        List.sort_uniq compare (List.map fst (Lint.Callgraph.calls g (def key)))
      in
      Alcotest.(check (list string)) "cross-module edge" [ "Alpha.base" ] (calls_of "Beta.mid");
      Alcotest.(check (list string))
        "two edges, qualified and nested"
        [ "Alpha.base"; "Beta.mid" ]
        (calls_of "Gamma.top");
      (* [self] calls [top] by bare ident within the same file. *)
      Alcotest.(check (list string)) "bare-ident edge" [ "Gamma.top" ] (calls_of "Gamma.self"))

(* ---------- R2: forbidden constructs ---------- *)

let test_r2_violations () =
  let report =
    scan
      [
        ( "lib/zgeom/evil.ml",
          "let f x = Obj.magic x\n\
           let g x = Marshal.to_string x []\n\
           let h () = exit 1\n" );
        ("lib/zgeom/evil.mli", "val h : unit -> unit\n");
        (* Marshal is forbidden in test/ too; exit is fine in bin/. *)
        ("test/test_evil.ml", "let s x = Marshal.to_string x []\n");
        ("bin/main.ml", "let () = exit 0\n");
      ]
  in
  check_rule_count "three lib + one test hit" "R2" 4 report

let test_r2_clean () =
  let report =
    scan
      [
        ("lib/zgeom/fine.ml", "let f x = x + 1\n");
        ("lib/zgeom/fine.mli", "val f : int -> int\n");
      ]
  in
  check_rule_count "no R2" "R2" 0 report

(* ---------- R3: task purity ---------- *)

let test_r3_violations () =
  let report =
    scan
      [
        ( "lib/core/fanout.ml",
          "let total pool xs =\n\
          \  let sum = ref 0 in\n\
          \  Parallel.parallel_for pool ~n:10 (fun i -> sum := !sum + i);\n\
          \  let tbl = Hashtbl.create 4 in\n\
          \  Parallel.map pool (fun x -> Hashtbl.replace tbl x x) xs\n" );
        ("lib/core/fanout.mli", "val total : int -> int list -> unit list\n");
      ]
  in
  check_rule_count "captured ref and captured table" "R3" 2 report

let test_r3_task_local_clean () =
  let report =
    scan
      [
        ( "lib/core/local.ml",
          "let squares pool xs =\n\
          \  Parallel.map pool\n\
          \    (fun x ->\n\
          \      let acc = ref 0 in\n\
          \      for i = 1 to x do acc := !acc + i done;\n\
          \      let seen = Hashtbl.create 4 in\n\
          \      Hashtbl.replace seen x !acc;\n\
          \      !acc)\n\
          \    xs\n" );
        ("lib/core/local.mli", "val squares : int -> int list -> int list\n");
      ]
  in
  check_rule_count "task-local mutation is fine" "R3" 0 report

let test_r3_steal_violations () =
  (* The stealing entry points hide their worker-run closures inside
     task tuples; the scan must find them there, and inside a direct
     [spawn] body. *)
  let report =
    scan
      [
        ( "lib/core/stealbad.ml",
          "let bad_run pool =\n\
          \  let hits = ref 0 in\n\
          \  Parallel.Steal.run pool [| ([ 0 ], (fun _ctx -> incr hits; [ ([ 0 ], !hits) ])) |]\n\
           let bad_spawn ctx =\n\
          \  let seen = Hashtbl.create 4 in\n\
          \  Parallel.Steal.spawn ctx ~key:[ 1 ] (fun _ctx -> Hashtbl.replace seen 1 1; [])\n" );
        ( "lib/core/stealbad.mli",
          "val bad_run : Parallel.pool -> (int list * int) list\n\
           val bad_spawn : int Parallel.Steal.ctx -> unit\n" );
      ]
  in
  check_rule_count "captured ref in a task tuple, captured table in a spawn body" "R3" 2 report

let test_r3_steal_task_local_clean () =
  (* Same shape, but every mutation targets state created inside the
     task body - and the tasks array is built by a nested [Array.map],
     which the scan must descend through without flagging the builder
     closure itself. *)
  let report =
    scan
      [
        ( "lib/core/stealok.ml",
          "let clean_run pool xs =\n\
          \  Parallel.Steal.run pool\n\
          \    (Array.map\n\
          \       (fun x ->\n\
          \         ( [ x ],\n\
          \           (fun _ctx ->\n\
          \             let acc = ref 0 in\n\
          \             for i = 1 to x do acc := !acc + i done;\n\
          \             [ ([ x ], !acc) ]) ))\n\
          \       xs)\n" );
        ("lib/core/stealok.mli", "val clean_run : Parallel.pool -> int array -> (int list * int) list\n");
      ]
  in
  check_rule_count "task-local mutation under Steal.run is fine" "R3" 0 report

(* ---------- R4: crash safety ---------- *)

let test_r4_violation () =
  let report =
    scan
      [
        ("lib/store/publish.ml", "let publish tmp path = Sys.rename tmp path\n");
        ("lib/store/publish.mli", "val publish : string -> string -> unit\n");
        (* lib/corpus is in scope too: its manifest checkpoint uses the
           same atomic-replace protocol. *)
        ("lib/corpus/publish.ml", "let publish tmp path = Unix.rename tmp path\n");
        ("lib/corpus/publish.mli", "val publish : string -> string -> unit\n");
      ]
  in
  check_rule_count "rename without fsync (store and corpus)" "R4" 2 report

let test_r4_clean () =
  let report =
    scan
      [
        ( "lib/store/atomic.ml",
          "let publish oc tmp path =\n\
          \  Unix.fsync (Unix.descr_of_out_channel oc);\n\
          \  Sys.rename tmp path\n" );
        ("lib/store/atomic.mli", "val publish : out_channel -> string -> string -> unit\n");
        ( "lib/corpus/atomic.ml",
          "let publish fd tmp path =\n\
          \  Unix.fsync fd;\n\
          \  Unix.close fd;\n\
          \  Sys.rename tmp path\n" );
        ("lib/corpus/atomic.mli", "val publish : Unix.file_descr -> string -> string -> unit\n");
        (* Outside lib/store and lib/corpus the rule does not apply. *)
        ("lib/render/swap.ml", "let swap tmp path = Sys.rename tmp path\n");
        ("lib/render/swap.mli", "val swap : string -> string -> unit\n");
      ]
  in
  check_rule_count "fsync-then-rename, and out-of-scope rename" "R4" 0 report

(* ---------- R6: lock discipline ---------- *)

let test_r6_lock_leak_on_raise () =
  (* The callee between lock and unlock can raise; the Parsetree layer
     cannot see that, the typed walker must. *)
  let report =
    scan
      [
        ( "lib/parallel/guard.ml",
          "let with_lock m f =\n\
          \  Mutex.lock m;\n\
          \  let r = f () in\n\
          \  Mutex.unlock m;\n\
          \  r\n" );
        ("lib/parallel/guard.mli", "val with_lock : Mutex.t -> (unit -> 'a) -> 'a\n");
      ]
  in
  check_rule_count "unprotected raise window" "R6" 1 report;
  match by_rule "R6" report with
  | [ f ] ->
    Alcotest.(check bool) "names the raising call and the lock" true
      (contains ~needle:"f can raise while m is held" f.Lint.Finding.message)
  | _ -> Alcotest.fail "expected one R6 finding"

let test_r6_fun_protect_clean () =
  let report =
    scan
      [
        ( "lib/parallel/guard.ml",
          "let with_lock m f =\n\
          \  Mutex.lock m;\n\
          \  Fun.protect ~finally:(fun () -> Mutex.unlock m) f\n" );
        ("lib/parallel/guard.mli", "val with_lock : Mutex.t -> (unit -> 'a) -> 'a\n");
      ]
  in
  check_rule_count "finalizer covers the raise" "R6" 0 report

let test_r6_double_lock () =
  let report =
    scan
      [
        ( "lib/parallel/twice.ml",
          "let twice m =\n  Mutex.lock m;\n  Mutex.lock m;\n  Mutex.unlock m\n" );
        ("lib/parallel/twice.mli", "val twice : Mutex.t -> unit\n");
      ]
  in
  check_rule_count "relocking a held mutex" "R6" 1 report;
  match by_rule "R6" report with
  | [ f ] ->
    Alcotest.(check int) "at the second lock" 3 f.Lint.Finding.line;
    Alcotest.(check bool) "calls it a double lock" true
      (contains ~needle:"already held" f.Lint.Finding.message
      || contains ~needle:"double" f.Lint.Finding.message)
  | _ -> Alcotest.fail "expected one R6 finding"

let test_r6_out_of_scope () =
  (* R6 is scoped to lib/parallel: the same shape elsewhere is the
     caller's business. *)
  let report =
    scan
      [
        ( "lib/tiling/guard.ml",
          "let with_lock m f =\n\
          \  Mutex.lock m;\n\
          \  let r = f () in\n\
          \  Mutex.unlock m;\n\
          \  r\n" );
        ("lib/tiling/guard.mli", "val with_lock : Mutex.t -> (unit -> 'a) -> 'a\n");
      ]
  in
  check_rule_count "out of scope" "R6" 0 report

(* ---------- R7: resource lifetime ---------- *)

let test_r7_fd_leak_on_raise () =
  let report =
    scan
      [
        ( "lib/store/peek.ml",
          "let peek path =\n\
          \  let ic = open_in_bin path in\n\
          \  let s = really_input_string ic 4 in\n\
          \  close_in ic;\n\
          \  s\n" );
        ("lib/store/peek.mli", "val peek : string -> string\n");
      ]
  in
  check_rule_count "read can raise before the close" "R7" 1 report;
  match by_rule "R7" report with
  | [ f ] ->
    Alcotest.(check int) "anchored at the open" 2 f.Lint.Finding.line;
    Alcotest.(check bool) "cites the raising call" true
      (contains ~needle:"really_input_string" f.Lint.Finding.message)
  | _ -> Alcotest.fail "expected one R7 finding"

let test_r7_fun_protect_clean () =
  let report =
    scan
      [
        ( "lib/store/peek.ml",
          "let peek path =\n\
          \  let ic = open_in_bin path in\n\
          \  Fun.protect\n\
          \    ~finally:(fun () -> close_in_noerr ic)\n\
          \    (fun () -> really_input_string ic 4)\n" );
        ("lib/store/peek.mli", "val peek : string -> string\n");
      ]
  in
  check_rule_count "protected read is clean" "R7" 0 report

let test_r7_mmap_without_close () =
  let report =
    scan
      [
        ( "lib/corpus/view.ml",
          "let view path n =\n\
          \  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in\n\
          \  Bigarray.array1_of_genarray\n\
          \    (Unix.map_file fd Bigarray.char Bigarray.c_layout false [| n |])\n" );
        ( "lib/corpus/view.mli",
          "val view :\n\
          \  string -> int -> (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) \
           Bigarray.Array1.t\n" );
      ]
  in
  check_rule_count "mapped fd never closed" "R7" 1 report

let test_r7_mmap_protected_clean () =
  let report =
    scan
      [
        ( "lib/corpus/view.ml",
          "let view path n =\n\
          \  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in\n\
          \  Fun.protect\n\
          \    ~finally:(fun () -> Unix.close fd)\n\
          \    (fun () ->\n\
          \      Bigarray.array1_of_genarray\n\
          \        (Unix.map_file fd Bigarray.char Bigarray.c_layout false [| n |]))\n" );
        ( "lib/corpus/view.mli",
          "val view :\n\
          \  string -> int -> (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) \
           Bigarray.Array1.t\n" );
      ]
  in
  check_rule_count "mapping then closing is clean" "R7" 0 report

let test_r7_socket_leak_on_raise () =
  let report =
    scan
      [
        ( "lib/server/probe.ml",
          "let probe path =\n\
          \  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in\n\
          \  Unix.connect fd (Unix.ADDR_UNIX path);\n\
          \  Unix.close fd\n" );
        ("lib/server/probe.mli", "val probe : string -> unit\n");
      ]
  in
  check_rule_count "connect can raise before the close" "R7" 1 report;
  match by_rule "R7" report with
  | [ f ] ->
    Alcotest.(check bool) "names the socket kind" true
      (contains ~needle:"socket" f.Lint.Finding.message);
    Alcotest.(check bool) "cites the raising call" true
      (contains ~needle:"Unix.connect" f.Lint.Finding.message)
  | _ -> Alcotest.fail "expected one R7 finding"

let test_r7_socket_protected_clean () =
  let report =
    scan
      [
        ( "lib/server/probe.ml",
          "let probe path =\n\
          \  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in\n\
          \  Fun.protect\n\
          \    ~finally:(fun () -> Unix.close fd)\n\
          \    (fun () -> Unix.connect fd (Unix.ADDR_UNIX path))\n" );
        ("lib/server/probe.mli", "val probe : string -> unit\n");
      ]
  in
  check_rule_count "protected connect is clean" "R7" 0 report

let test_r7_accept_leak_on_raise () =
  let report =
    scan
      [
        ( "lib/server/greet.ml",
          "let greet listen =\n\
          \  let fd, _addr = Unix.accept listen in\n\
          \  let b = Bytes.create 1 in\n\
          \  ignore (Unix.read fd b 0 1);\n\
          \  Unix.close fd\n" );
        ("lib/server/greet.mli", "val greet : Unix.file_descr -> unit\n");
      ]
  in
  check_rule_count "read can raise before the accepted close" "R7" 1 report;
  match by_rule "R7" report with
  | [ f ] ->
    Alcotest.(check bool) "names the accepted socket" true
      (contains ~needle:"accepted socket" f.Lint.Finding.message)
  | _ -> Alcotest.fail "expected one R7 finding"

let test_r7_accept_protected_clean () =
  let report =
    scan
      [
        ( "lib/server/greet.ml",
          "let greet listen =\n\
          \  let b = Bytes.create 1 in\n\
          \  let fd, _addr = Unix.accept listen in\n\
          \  Fun.protect\n\
          \    ~finally:(fun () -> Unix.close fd)\n\
          \    (fun () -> ignore (Unix.read fd b 0 1))\n" );
        ("lib/server/greet.mli", "val greet : Unix.file_descr -> unit\n");
      ]
  in
  check_rule_count "protected accepted socket is clean" "R7" 0 report

(* ---------- R5: interface coverage ---------- *)

let test_r5 () =
  let report =
    scan
      [
        ("lib/prng/naked.ml", "let x = 1\n");
        ("lib/prng/dressed.ml", "let x = 1\n");
        ("lib/prng/dressed.mli", "val x : int\n");
        (* bin/ and test/ modules need no interfaces. *)
        ("bin/main.ml", "let () = print_newline ()\n");
        ("test/test_x.ml", "let () = print_newline ()\n");
      ]
  in
  check_rule_count "exactly the naked module" "R5" 1 report;
  match by_rule "R5" report with
  | [ f ] -> Alcotest.(check string) "file" "lib/prng/naked.ml" f.Lint.Finding.file
  | _ -> Alcotest.fail "expected one R5 finding"

(* ---------- parse failures ---------- *)

let test_parse_failure () =
  let report = scan [ ("lib/prng/broken.ml", "let = in +++\n") ] in
  check_rule_count "one P0 finding" "P0" 1 report

(* ---------- baseline ---------- *)

let test_baseline_suppression () =
  let files =
    [
      ("lib/tiling/clock.ml", "let now () = Unix.gettimeofday ()\n");
      ("lib/tiling/clock.mli", "val now : unit -> float\n");
    ]
  in
  let report = scan files in
  check_rule_count "violation present without baseline" "R1" 1 report;
  let baseline = List.map Lint.Baseline.entry_of_finding report.Lint.findings in
  let suppressed = with_tree files (fun root -> Lint.run ~baseline ~root ()) in
  Alcotest.(check int) "no findings survive" 0 (List.length suppressed.Lint.findings);
  Alcotest.(check int) "suppression is counted" 1 suppressed.Lint.suppressed

let test_baseline_file_roundtrip () =
  let entry = { Lint.Baseline.rule = "R1"; file = "lib/a.ml"; message = "msg with spaces" } in
  let path = Filename.temp_file "tilesched-baseline" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc "# justification: the measurement is the point\n\n";
          Out_channel.output_string oc (Lint.Baseline.to_string [ entry ]));
      match Lint.Baseline.load path with
      | Error msg -> Alcotest.failf "load failed: %s" msg
      | Ok loaded ->
        Alcotest.(check int) "one entry" 1 (Lint.Baseline.size loaded);
        Alcotest.(check bool) "roundtrips" true (loaded = [ entry ]))

let test_baseline_rejects_garbage () =
  let path = Filename.temp_file "tilesched-baseline" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc "not a baseline\n");
      match Lint.Baseline.load path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "expected a parse error")

(* ---------- A0: unused allowlist entries ---------- *)

let test_a0_unused_allowlist () =
  (* The engine allowlist entry exists for wall-clock deadlines; an
     engine.ml that never needs it makes the entry stale. *)
  let report =
    scan
      [
        ("lib/server/engine.ml", "let version = 3\n");
        ("lib/server/engine.mli", "val version : int\n");
      ]
  in
  check_rule_count "unused entry flagged" "A0" 1 report;
  (match by_rule "A0" report with
  | [ f ] -> Alcotest.(check string) "names the entry" "lib/server/engine.ml" f.Lint.Finding.file
  | _ -> Alcotest.fail "expected one A0 finding");
  (* Entries whose prefix matches no scanned file are not judged: this
     fixture tree contains no loadgen.ml, and says nothing about it. *)
  Alcotest.(check bool) "absent files are out of jurisdiction" false
    (List.exists (fun f -> f.Lint.Finding.file = "lib/server/loadgen.ml") report.Lint.findings)

(* ---------- B0: stale baseline entries ---------- *)

let test_b0_stale_baseline () =
  let files =
    [ ("lib/tiling/fine.ml", "let f x = x + 1\n"); ("lib/tiling/fine.mli", "val f : int -> int\n") ]
  in
  let baseline =
    [ { Lint.Baseline.rule = "R1"; file = "lib/tiling/gone.ml"; message = "long since fixed" } ]
  in
  let report = with_tree files (fun root -> Lint.run ~baseline ~root ()) in
  check_rule_count "paid-off debt is flagged" "B0" 1 report;
  let relaxed = with_tree files (fun root -> Lint.run ~baseline ~allow_stale:true ~root ()) in
  Alcotest.(check int) "--allow-stale silences B0" 0 (List.length relaxed.Lint.findings)

(* ---------- a minimal JSON reader for the emitter tests ---------- *)

(* Just enough JSON to validate the emitters' output end-to-end:
   objects, arrays, strings with every escape the emitters produce,
   numbers, and the three literals.  Raises [Bad_json] on anything
   else, so a property failure points at the emitter. *)
type json =
  | Jnull
  | Jbool of bool
  | Jnum of float
  | Jstr of string
  | Jarr of json list
  | Jobj of (string * json) list

exception Bad_json of string

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws () | _ -> ()
  in
  let expect c =
    if peek () = Some c then advance () else fail (Printf.sprintf "expected '%c'" c)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance (); Buffer.contents b
      | '\\' ->
        advance ();
        (if !pos >= n then fail "truncated escape");
        (match s.[!pos] with
        | '"' -> Buffer.add_char b '"'; advance ()
        | '\\' -> Buffer.add_char b '\\'; advance ()
        | '/' -> Buffer.add_char b '/'; advance ()
        | 'n' -> Buffer.add_char b '\n'; advance ()
        | 't' -> Buffer.add_char b '\t'; advance ()
        | 'r' -> Buffer.add_char b '\r'; advance ()
        | 'b' -> Buffer.add_char b '\b'; advance ()
        | 'f' -> Buffer.add_char b '\012'; advance ()
        | 'u' ->
          advance ();
          if !pos + 4 > n then fail "truncated \\u escape";
          let v = int_of_string ("0x" ^ String.sub s !pos 4) in
          pos := !pos + 4;
          if v < 0x80 then Buffer.add_char b (Char.chr v)
          else fail "\\u escape above ASCII (the emitters never produce one)"
        | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
        go ()
      | c when Char.code c < 0x20 -> fail "raw control character in string"
      | c -> Buffer.add_char b c; advance (); go ()
    in
    go ()
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ lit)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Jstr (parse_string ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin advance (); Jobj [] end
      else
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); members ((key, v) :: acc)
          | Some '}' -> advance (); Jobj (List.rev ((key, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin advance (); Jarr [] end
      else
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); elements (v :: acc)
          | Some ']' -> advance (); Jarr (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        elements []
    | Some 't' -> literal "true" (Jbool true)
    | Some 'f' -> literal "false" (Jbool false)
    | Some 'n' -> literal "null" Jnull
    | Some _ ->
      let start = !pos in
      let num_char = function '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false in
      while !pos < n && num_char s.[!pos] do advance () done;
      if !pos = start then fail "unexpected character";
      (match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some v -> Jnum v
      | None -> fail "bad number")
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing bytes after the document";
  v

let member key = function
  | Jobj kvs -> (
    match List.assoc_opt key kvs with
    | Some v -> v
    | None -> raise (Bad_json ("missing member " ^ key)))
  | _ -> raise (Bad_json ("not an object while looking for " ^ key))

let as_string = function Jstr s -> s | _ -> raise (Bad_json "not a string")
let as_array = function Jarr l -> l | _ -> raise (Bad_json "not an array")

let first = function
  | [] -> raise (Bad_json "empty array")
  | x :: _ -> x

(* Render one finding through both emitters and read it back. *)
let roundtrips rule file message =
  let f =
    { Lint.Finding.rule; severity = Lint.Finding.Error; file; line = 1; col = 0; message }
  in
  let report = { Lint.findings = [ f ]; files_scanned = 1; files_typed = 1; suppressed = 0 } in
  let jf = first (as_array (member "findings" (parse_json (Lint.render_json report)))) in
  let result =
    first
      (as_array
         (member "results" (first (as_array (member "runs" (parse_json (Lint.render_sarif report)))))))
  in
  as_string (member "rule" jf) = rule
  && as_string (member "file" jf) = file
  && as_string (member "message" jf) = message
  && as_string (member "ruleId" result) = rule
  && as_string (member "text" (member "message" result)) = message
  && as_string
       (member "uri"
          (member "artifactLocation"
             (member "physicalLocation" (first (as_array (member "locations" result))))))
     = file

let test_render_escaping_cases () =
  List.iter
    (fun message ->
      Alcotest.(check bool) (String.escaped message) true (roundtrips "R1" "lib/a.ml" message))
    [
      "";
      "quote \" and backslash \\ in one";
      "newline\nand\ttab\rand\bbell\007";
      "non-ASCII: h\xc3\xa9llo \xe2\x80\x94 \xf0\x9f\x90\xab";
      "a JSON injection attempt: \"},{\"rule\":\"X\"";
    ]

let render_roundtrip_prop =
  let gnarly =
    QCheck.make
      ~print:(fun s -> String.escaped s)
      QCheck.Gen.(string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 40))
  in
  QCheck.Test.make ~name:"json and sarif emitters round-trip arbitrary bytes" ~count:500
    QCheck.(triple gnarly gnarly gnarly)
    (fun (rule, file, message) -> roundtrips rule file message)

(* ---------- rendering ---------- *)

let test_render_formats () =
  let report =
    scan
      [
        ("lib/tiling/clock.ml", "let now () = Unix.gettimeofday ()\n");
        ("lib/tiling/clock.mli", "val now : unit -> float\n");
      ]
  in
  let human = Lint.render_human report in
  let contains ~needle hay =
    let n = String.length needle in
    let rec go i = i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "human cites file:line and rule" true
    (contains ~needle:"lib/tiling/clock.ml:1:" human && contains ~needle:"[R1]" human);
  let json = Lint.render_json report in
  Alcotest.(check bool) "json carries the rule id" true (contains ~needle:{|"rule":"R1"|} json)

(* ---------- the rule book ---------- *)

let test_rule_book () =
  Alcotest.(check (list string)) "stable rule ids"
    [ "R1"; "R2"; "R3"; "R4"; "R5"; "R6"; "R7" ]
    (List.map (fun m -> m.Lint.Rules.id) Lint.Rules.all);
  List.iter
    (fun m ->
      Alcotest.(check bool)
        (m.Lint.Rules.id ^ " has a rationale")
        true
        (String.length m.Lint.Rules.rationale > 0))
    Lint.Rules.all

(* ---------- end-to-end: the repo tree is clean ---------- *)

let test_repo_tree_clean () =
  (* Under `dune runtest` the cwd is _build/default/test and the parent
     holds the full copied source tree; under `dune exec` from the
     workspace root the cwd is the tree itself. *)
  let cwd = Sys.getcwd () in
  let root =
    if Sys.file_exists (Filename.concat cwd "lib") then cwd else Filename.dirname cwd
  in
  let report = Lint.run ~root () in
  Alcotest.(check int)
    (String.concat "\n" ("repo tree lints clean" :: List.map Lint.Finding.to_human report.Lint.findings))
    0
    (List.length report.Lint.findings);
  Alcotest.(check bool) "scanned a real tree" true (report.Lint.files_scanned > 50);
  (* The semantic layer must actually have run: most library sources
     acquire a typedtree (via cmt artifacts or in-process typing). *)
  Alcotest.(check bool)
    (Printf.sprintf "typed pipeline covered the library (%d typed)" report.Lint.files_typed)
    true
    (report.Lint.files_typed > 40)

let () =
  Alcotest.run "lint"
    [
      ( "r1-determinism",
        [
          Alcotest.test_case "wall-clock and unordered iteration flagged" `Quick test_r1_violations;
          Alcotest.test_case "sorted fold is clean" `Quick test_r1_sorted_fold_clean;
          Alcotest.test_case "engine allowlist" `Quick test_r1_allowlist;
        ] );
      ( "r1-taint",
        [
          Alcotest.test_case "seed two helpers deep taints callers" `Quick test_r1_taint_two_deep;
          Alcotest.test_case "deterministic root taints nothing" `Quick test_r1_taint_clean_root;
          Alcotest.test_case "allowlisted root starts no taint" `Quick test_r1_taint_allowlisted_root;
        ] );
      ( "callgraph",
        [ Alcotest.test_case "three modules, all edge spellings" `Quick test_callgraph_three_modules ] );
      ( "r2-forbidden",
        [
          Alcotest.test_case "Obj.magic, Marshal, library exit" `Quick test_r2_violations;
          Alcotest.test_case "clean module" `Quick test_r2_clean;
        ] );
      ( "r3-task-purity",
        [
          Alcotest.test_case "captured mutation flagged" `Quick test_r3_violations;
          Alcotest.test_case "task-local mutation clean" `Quick test_r3_task_local_clean;
          Alcotest.test_case "steal task capture flagged" `Quick test_r3_steal_violations;
          Alcotest.test_case "steal task-local clean" `Quick test_r3_steal_task_local_clean;
        ] );
      ( "r4-crash-safety",
        [
          Alcotest.test_case "rename without fsync" `Quick test_r4_violation;
          Alcotest.test_case "fsync-then-rename clean" `Quick test_r4_clean;
        ] );
      ( "r6-lock-discipline",
        [
          Alcotest.test_case "raise window between lock and unlock" `Quick test_r6_lock_leak_on_raise;
          Alcotest.test_case "Fun.protect release is clean" `Quick test_r6_fun_protect_clean;
          Alcotest.test_case "double lock" `Quick test_r6_double_lock;
          Alcotest.test_case "scoped to lib/parallel" `Quick test_r6_out_of_scope;
        ] );
      ( "r7-resource-lifetime",
        [
          Alcotest.test_case "fd leak on raise" `Quick test_r7_fd_leak_on_raise;
          Alcotest.test_case "Fun.protect close is clean" `Quick test_r7_fun_protect_clean;
          Alcotest.test_case "mmap without close" `Quick test_r7_mmap_without_close;
          Alcotest.test_case "mmap with protected close is clean" `Quick test_r7_mmap_protected_clean;
          Alcotest.test_case "socket leaks when connect raises" `Quick
            test_r7_socket_leak_on_raise;
          Alcotest.test_case "protected socket connect is clean" `Quick
            test_r7_socket_protected_clean;
          Alcotest.test_case "accepted socket leaks when read raises" `Quick
            test_r7_accept_leak_on_raise;
          Alcotest.test_case "protected accepted socket is clean" `Quick
            test_r7_accept_protected_clean;
        ] );
      ( "r5-interfaces",
        [ Alcotest.test_case "missing .mli flagged, bin/test exempt" `Quick test_r5 ] );
      ( "driver",
        [
          Alcotest.test_case "parse failure becomes P0" `Quick test_parse_failure;
          Alcotest.test_case "baseline suppresses and counts" `Quick test_baseline_suppression;
          Alcotest.test_case "baseline file roundtrip" `Quick test_baseline_file_roundtrip;
          Alcotest.test_case "baseline rejects garbage" `Quick test_baseline_rejects_garbage;
          Alcotest.test_case "unused allowlist entry becomes A0" `Quick test_a0_unused_allowlist;
          Alcotest.test_case "stale baseline entry becomes B0" `Quick test_b0_stale_baseline;
          Alcotest.test_case "human and json rendering" `Quick test_render_formats;
          Alcotest.test_case "emitters survive hostile messages" `Quick test_render_escaping_cases;
          QCheck_alcotest.to_alcotest render_roundtrip_prop;
          Alcotest.test_case "rule book is complete" `Quick test_rule_book;
        ] );
      ("end-to-end", [ Alcotest.test_case "repo tree lints clean" `Quick test_repo_tree_clean ]);
    ]
