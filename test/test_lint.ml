(* Tests for the static analyzer: one violating and one clean fixture
   per rule (R1 determinism, R2 forbidden constructs, R3 task purity,
   R4 fsync-before-rename, R5 interface coverage), the baseline
   suppression mechanism, parse-failure handling, and an end-to-end
   assertion that the real repo tree produces zero findings. *)

let mkdir_p path =
  let rec go acc = function
    | [] -> ()
    | part :: rest ->
      let acc =
        if acc = "" then (if part = "" then "/" else part) else Filename.concat acc part
      in
      (if acc <> "/" && acc <> "" && not (Sys.file_exists acc) then
         try Unix.mkdir acc 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      go acc rest
  in
  go "" (String.split_on_char '/' path)

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

(* Build a throwaway source tree from (relative path, contents) pairs
   and run the analyzer over it. *)
let with_tree files f =
  let root = Filename.temp_dir "tilesched-lint" "" in
  Fun.protect
    ~finally:(fun () -> rm_rf root)
    (fun () ->
      List.iter
        (fun (rel, contents) ->
          mkdir_p (Filename.concat root (Filename.dirname rel));
          Out_channel.with_open_bin (Filename.concat root rel) (fun oc ->
              Out_channel.output_string oc contents))
        files;
      f root)

let scan files = with_tree files (fun root -> Lint.run ~root ())

let by_rule rule (report : Lint.report) =
  List.filter (fun f -> f.Lint.Finding.rule = rule) report.Lint.findings

let check_rule_count msg rule expected report =
  Alcotest.(check int) msg expected (List.length (by_rule rule report))

(* ---------- R1: determinism ---------- *)

let test_r1_violations () =
  let report =
    scan
      [
        ( "lib/tiling/clock.ml",
          "let now () = Unix.gettimeofday ()\n\
           let later () = Sys.time ()\n\
           let seed () = Random.self_init ()\n\
           let order t = Hashtbl.fold (fun k _ acc -> k :: acc) t []\n\
           let visit t = Hashtbl.iter (fun _ _ -> ()) t\n" );
        ("lib/tiling/clock.mli", "val now : unit -> float\n");
      ]
  in
  check_rule_count "five R1 findings" "R1" 5 report;
  let lines = List.map (fun f -> f.Lint.Finding.line) (by_rule "R1" report) in
  Alcotest.(check (list int)) "source order" [ 1; 2; 3; 4; 5 ] lines

let test_r1_sorted_fold_clean () =
  let report =
    scan
      [
        ( "lib/tiling/sorted.ml",
          "let order t = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t [])\n" );
        ("lib/tiling/sorted.mli", "val order : ('a, 'b) Hashtbl.t -> 'a list\n");
      ]
  in
  check_rule_count "sorted fold is ordered output" "R1" 0 report

let test_r1_allowlist () =
  (* Same constructs, but under lib/netsim/ where wall-clock is the
     simulation's subject: the allowlist exempts them. *)
  let report =
    scan
      [
        ("lib/netsim/clock.ml", "let now () = Unix.gettimeofday ()\n");
        ("lib/netsim/clock.mli", "val now : unit -> float\n");
      ]
  in
  check_rule_count "allowlisted dir" "R1" 0 report

(* ---------- R2: forbidden constructs ---------- *)

let test_r2_violations () =
  let report =
    scan
      [
        ( "lib/zgeom/evil.ml",
          "let f x = Obj.magic x\n\
           let g x = Marshal.to_string x []\n\
           let h () = exit 1\n" );
        ("lib/zgeom/evil.mli", "val h : unit -> unit\n");
        (* Marshal is forbidden in test/ too; exit is fine in bin/. *)
        ("test/test_evil.ml", "let s x = Marshal.to_string x []\n");
        ("bin/main.ml", "let () = exit 0\n");
      ]
  in
  check_rule_count "three lib + one test hit" "R2" 4 report

let test_r2_clean () =
  let report =
    scan
      [
        ("lib/zgeom/fine.ml", "let f x = x + 1\n");
        ("lib/zgeom/fine.mli", "val f : int -> int\n");
      ]
  in
  check_rule_count "no R2" "R2" 0 report

(* ---------- R3: task purity ---------- *)

let test_r3_violations () =
  let report =
    scan
      [
        ( "lib/core/fanout.ml",
          "let total pool xs =\n\
          \  let sum = ref 0 in\n\
          \  Parallel.parallel_for pool ~n:10 (fun i -> sum := !sum + i);\n\
          \  let tbl = Hashtbl.create 4 in\n\
          \  Parallel.map pool (fun x -> Hashtbl.replace tbl x x) xs\n" );
        ("lib/core/fanout.mli", "val total : int -> int list -> unit list\n");
      ]
  in
  check_rule_count "captured ref and captured table" "R3" 2 report

let test_r3_task_local_clean () =
  let report =
    scan
      [
        ( "lib/core/local.ml",
          "let squares pool xs =\n\
          \  Parallel.map pool\n\
          \    (fun x ->\n\
          \      let acc = ref 0 in\n\
          \      for i = 1 to x do acc := !acc + i done;\n\
          \      let seen = Hashtbl.create 4 in\n\
          \      Hashtbl.replace seen x !acc;\n\
          \      !acc)\n\
          \    xs\n" );
        ("lib/core/local.mli", "val squares : int -> int list -> int list\n");
      ]
  in
  check_rule_count "task-local mutation is fine" "R3" 0 report

let test_r3_steal_violations () =
  (* The stealing entry points hide their worker-run closures inside
     task tuples; the scan must find them there, and inside a direct
     [spawn] body. *)
  let report =
    scan
      [
        ( "lib/core/stealbad.ml",
          "let bad_run pool =\n\
          \  let hits = ref 0 in\n\
          \  Parallel.Steal.run pool [| ([ 0 ], (fun _ctx -> incr hits; [ ([ 0 ], !hits) ])) |]\n\
           let bad_spawn ctx =\n\
          \  let seen = Hashtbl.create 4 in\n\
          \  Parallel.Steal.spawn ctx ~key:[ 1 ] (fun _ctx -> Hashtbl.replace seen 1 1; [])\n" );
        ( "lib/core/stealbad.mli",
          "val bad_run : Parallel.pool -> (int list * int) list\n\
           val bad_spawn : int Parallel.Steal.ctx -> unit\n" );
      ]
  in
  check_rule_count "captured ref in a task tuple, captured table in a spawn body" "R3" 2 report

let test_r3_steal_task_local_clean () =
  (* Same shape, but every mutation targets state created inside the
     task body - and the tasks array is built by a nested [Array.map],
     which the scan must descend through without flagging the builder
     closure itself. *)
  let report =
    scan
      [
        ( "lib/core/stealok.ml",
          "let clean_run pool xs =\n\
          \  Parallel.Steal.run pool\n\
          \    (Array.map\n\
          \       (fun x ->\n\
          \         ( [ x ],\n\
          \           (fun _ctx ->\n\
          \             let acc = ref 0 in\n\
          \             for i = 1 to x do acc := !acc + i done;\n\
          \             [ ([ x ], !acc) ]) ))\n\
          \       xs)\n" );
        ("lib/core/stealok.mli", "val clean_run : Parallel.pool -> int array -> (int list * int) list\n");
      ]
  in
  check_rule_count "task-local mutation under Steal.run is fine" "R3" 0 report

(* ---------- R4: crash safety ---------- *)

let test_r4_violation () =
  let report =
    scan
      [
        ("lib/store/publish.ml", "let publish tmp path = Sys.rename tmp path\n");
        ("lib/store/publish.mli", "val publish : string -> string -> unit\n");
        (* lib/corpus is in scope too: its manifest checkpoint uses the
           same atomic-replace protocol. *)
        ("lib/corpus/publish.ml", "let publish tmp path = Unix.rename tmp path\n");
        ("lib/corpus/publish.mli", "val publish : string -> string -> unit\n");
      ]
  in
  check_rule_count "rename without fsync (store and corpus)" "R4" 2 report

let test_r4_clean () =
  let report =
    scan
      [
        ( "lib/store/atomic.ml",
          "let publish oc tmp path =\n\
          \  Unix.fsync (Unix.descr_of_out_channel oc);\n\
          \  Sys.rename tmp path\n" );
        ("lib/store/atomic.mli", "val publish : out_channel -> string -> string -> unit\n");
        ( "lib/corpus/atomic.ml",
          "let publish fd tmp path =\n\
          \  Unix.fsync fd;\n\
          \  Unix.close fd;\n\
          \  Sys.rename tmp path\n" );
        ("lib/corpus/atomic.mli", "val publish : Unix.file_descr -> string -> string -> unit\n");
        (* Outside lib/store and lib/corpus the rule does not apply. *)
        ("lib/render/swap.ml", "let swap tmp path = Sys.rename tmp path\n");
        ("lib/render/swap.mli", "val swap : string -> string -> unit\n");
      ]
  in
  check_rule_count "fsync-then-rename, and out-of-scope rename" "R4" 0 report

(* ---------- R5: interface coverage ---------- *)

let test_r5 () =
  let report =
    scan
      [
        ("lib/prng/naked.ml", "let x = 1\n");
        ("lib/prng/dressed.ml", "let x = 1\n");
        ("lib/prng/dressed.mli", "val x : int\n");
        (* bin/ and test/ modules need no interfaces. *)
        ("bin/main.ml", "let () = print_newline ()\n");
        ("test/test_x.ml", "let () = print_newline ()\n");
      ]
  in
  check_rule_count "exactly the naked module" "R5" 1 report;
  match by_rule "R5" report with
  | [ f ] -> Alcotest.(check string) "file" "lib/prng/naked.ml" f.Lint.Finding.file
  | _ -> Alcotest.fail "expected one R5 finding"

(* ---------- parse failures ---------- *)

let test_parse_failure () =
  let report = scan [ ("lib/prng/broken.ml", "let = in +++\n") ] in
  check_rule_count "one P0 finding" "P0" 1 report

(* ---------- baseline ---------- *)

let test_baseline_suppression () =
  let files =
    [
      ("lib/tiling/clock.ml", "let now () = Unix.gettimeofday ()\n");
      ("lib/tiling/clock.mli", "val now : unit -> float\n");
    ]
  in
  let report = scan files in
  check_rule_count "violation present without baseline" "R1" 1 report;
  let baseline = List.map Lint.Baseline.entry_of_finding report.Lint.findings in
  let suppressed = with_tree files (fun root -> Lint.run ~baseline ~root ()) in
  Alcotest.(check int) "no findings survive" 0 (List.length suppressed.Lint.findings);
  Alcotest.(check int) "suppression is counted" 1 suppressed.Lint.suppressed

let test_baseline_file_roundtrip () =
  let entry = { Lint.Baseline.rule = "R1"; file = "lib/a.ml"; message = "msg with spaces" } in
  let path = Filename.temp_file "tilesched-baseline" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc "# justification: the measurement is the point\n\n";
          Out_channel.output_string oc (Lint.Baseline.to_string [ entry ]));
      match Lint.Baseline.load path with
      | Error msg -> Alcotest.failf "load failed: %s" msg
      | Ok loaded ->
        Alcotest.(check int) "one entry" 1 (Lint.Baseline.size loaded);
        Alcotest.(check bool) "roundtrips" true (loaded = [ entry ]))

let test_baseline_rejects_garbage () =
  let path = Filename.temp_file "tilesched-baseline" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc "not a baseline\n");
      match Lint.Baseline.load path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "expected a parse error")

(* ---------- rendering ---------- *)

let test_render_formats () =
  let report =
    scan
      [
        ("lib/tiling/clock.ml", "let now () = Unix.gettimeofday ()\n");
        ("lib/tiling/clock.mli", "val now : unit -> float\n");
      ]
  in
  let human = Lint.render_human report in
  let contains ~needle hay =
    let n = String.length needle in
    let rec go i = i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "human cites file:line and rule" true
    (contains ~needle:"lib/tiling/clock.ml:1:" human && contains ~needle:"[R1]" human);
  let json = Lint.render_json report in
  Alcotest.(check bool) "json carries the rule id" true (contains ~needle:{|"rule":"R1"|} json)

(* ---------- the rule book ---------- *)

let test_rule_book () =
  Alcotest.(check (list string)) "stable rule ids"
    [ "R1"; "R2"; "R3"; "R4"; "R5" ]
    (List.map (fun m -> m.Lint.Rules.id) Lint.Rules.all);
  List.iter
    (fun m ->
      Alcotest.(check bool)
        (m.Lint.Rules.id ^ " has a rationale")
        true
        (String.length m.Lint.Rules.rationale > 0))
    Lint.Rules.all

(* ---------- end-to-end: the repo tree is clean ---------- *)

let test_repo_tree_clean () =
  (* Under `dune runtest` the cwd is _build/default/test and the parent
     holds the full copied source tree; under `dune exec` from the
     workspace root the cwd is the tree itself. *)
  let cwd = Sys.getcwd () in
  let root =
    if Sys.file_exists (Filename.concat cwd "lib") then cwd else Filename.dirname cwd
  in
  let report = Lint.run ~root () in
  Alcotest.(check int)
    (String.concat "\n" ("repo tree lints clean" :: List.map Lint.Finding.to_human report.Lint.findings))
    0
    (List.length report.Lint.findings);
  Alcotest.(check bool) "scanned a real tree" true (report.Lint.files_scanned > 50)

let () =
  Alcotest.run "lint"
    [
      ( "r1-determinism",
        [
          Alcotest.test_case "wall-clock and unordered iteration flagged" `Quick test_r1_violations;
          Alcotest.test_case "sorted fold is clean" `Quick test_r1_sorted_fold_clean;
          Alcotest.test_case "netsim allowlist" `Quick test_r1_allowlist;
        ] );
      ( "r2-forbidden",
        [
          Alcotest.test_case "Obj.magic, Marshal, library exit" `Quick test_r2_violations;
          Alcotest.test_case "clean module" `Quick test_r2_clean;
        ] );
      ( "r3-task-purity",
        [
          Alcotest.test_case "captured mutation flagged" `Quick test_r3_violations;
          Alcotest.test_case "task-local mutation clean" `Quick test_r3_task_local_clean;
          Alcotest.test_case "steal task capture flagged" `Quick test_r3_steal_violations;
          Alcotest.test_case "steal task-local clean" `Quick test_r3_steal_task_local_clean;
        ] );
      ( "r4-crash-safety",
        [
          Alcotest.test_case "rename without fsync" `Quick test_r4_violation;
          Alcotest.test_case "fsync-then-rename clean" `Quick test_r4_clean;
        ] );
      ( "r5-interfaces",
        [ Alcotest.test_case "missing .mli flagged, bin/test exempt" `Quick test_r5 ] );
      ( "driver",
        [
          Alcotest.test_case "parse failure becomes P0" `Quick test_parse_failure;
          Alcotest.test_case "baseline suppresses and counts" `Quick test_baseline_suppression;
          Alcotest.test_case "baseline file roundtrip" `Quick test_baseline_file_roundtrip;
          Alcotest.test_case "baseline rejects garbage" `Quick test_baseline_rejects_garbage;
          Alcotest.test_case "human and json rendering" `Quick test_render_formats;
          Alcotest.test_case "rule book is complete" `Quick test_rule_book;
        ] );
      ("end-to-end", [ Alcotest.test_case "repo tree lints clean" `Quick test_repo_tree_clean ]);
    ]
