(* Tests for the network simulator substrate. *)
open Lattice

(* --- Heap --- *)

let test_heap_ordering () =
  let h = Netsim.Heap.create () in
  List.iter (fun k -> Netsim.Heap.push h k k) [ 5; 3; 9; 1; 7; 3; 0 ];
  Alcotest.(check int) "size" 7 (Netsim.Heap.size h);
  let rec drain acc =
    match Netsim.Heap.pop h with
    | None -> List.rev acc
    | Some (k, _) -> drain (k :: acc)
  in
  Alcotest.(check (list int)) "sorted" [ 0; 1; 3; 3; 5; 7; 9 ] (drain [])

let test_heap_peek () =
  let h = Netsim.Heap.create () in
  Alcotest.(check (option int)) "empty peek" None (Netsim.Heap.peek_key h);
  Netsim.Heap.push h 4 "a";
  Netsim.Heap.push h 2 "b";
  Alcotest.(check (option int)) "peek min" (Some 2) (Netsim.Heap.peek_key h);
  Alcotest.(check int) "peek does not pop" 2 (Netsim.Heap.size h)

let test_heap_random_against_sort () =
  let rng = Prng.Xoshiro.create 3L in
  let h = Netsim.Heap.create () in
  let keys = List.init 500 (fun _ -> Prng.Xoshiro.int rng 1000) in
  List.iter (fun k -> Netsim.Heap.push h k ()) keys;
  let rec drain acc =
    match Netsim.Heap.pop h with None -> List.rev acc | Some (k, ()) -> drain (k :: acc)
  in
  Alcotest.(check (list int)) "heap sort" (List.sort Stdlib.compare keys) (drain [])

(* --- Workload --- *)

let test_periodic_workload () =
  let rng = Prng.Xoshiro.create 5L in
  let g = Netsim.Workload.create (Netsim.Workload.Periodic { interval = 10 }) rng in
  let t0 = Netsim.Workload.first_arrival g in
  Alcotest.(check bool) "phase within interval" true (0 <= t0 && t0 < 10);
  let t1 = Netsim.Workload.next_arrival g ~after:t0 in
  Alcotest.(check int) "period 10" (t0 + 10) t1

let test_poisson_workload_monotone () =
  let rng = Prng.Xoshiro.create 6L in
  let g = Netsim.Workload.create (Netsim.Workload.Poisson { rate = 0.2 }) rng in
  let t = ref (Netsim.Workload.first_arrival g) in
  for _ = 1 to 100 do
    let t' = Netsim.Workload.next_arrival g ~after:!t in
    Alcotest.(check bool) "strictly increasing" true (t' > !t);
    t := t'
  done

let test_bursty_workload () =
  let rng = Prng.Xoshiro.create 7L in
  let g = Netsim.Workload.create (Netsim.Workload.Bursty { burst = 3; gap_mean = 20.0 }) rng in
  let t0 = Netsim.Workload.first_arrival g in
  let t1 = Netsim.Workload.next_arrival g ~after:t0 in
  let t2 = Netsim.Workload.next_arrival g ~after:t1 in
  Alcotest.(check int) "burst is back-to-back" (t0 + 1) t1;
  Alcotest.(check int) "burst continues" (t1 + 1) t2

let test_expected_rate () =
  Alcotest.(check (float 1e-9)) "periodic" 0.1
    (Netsim.Workload.expected_rate (Netsim.Workload.Periodic { interval = 10 }));
  Alcotest.(check (float 1e-9)) "poisson" 0.25
    (Netsim.Workload.expected_rate (Netsim.Workload.Poisson { rate = 0.25 }))

let test_poisson_empirical_rate () =
  let rng = Prng.Xoshiro.create 8L in
  let g = Netsim.Workload.create (Netsim.Workload.Poisson { rate = 0.1 }) rng in
  let horizon = 100_000 in
  let rec count t acc =
    if t >= horizon then acc else count (Netsim.Workload.next_arrival g ~after:t) (acc + 1)
  in
  let n = count (Netsim.Workload.first_arrival g) 0 in
  let rate = float_of_int n /. float_of_int horizon in
  Alcotest.(check bool) "empirical rate near 0.1" true (Float.abs (rate -. 0.1) < 0.01)

(* --- MAC unit behaviour (decide functions in isolation) --- *)

let mk_ctx ?(busy = false) time = { Netsim.Mac.time; has_packet = true; channel_busy_last = busy }

let test_mac_lattice_matches_schedule () =
  let p = Prototile.chebyshev_ball ~dim:2 1 in
  let t =
    match Tiling.Search.find_tiling p with
    | Some t -> t
    | None -> Alcotest.fail "ball tiles"
  in
  let schedule = Core.Schedule.of_tiling t in
  let pos = Zgeom.Vec.make2 3 5 in
  let inst =
    Netsim.Mac.lattice_tdma schedule ~node_id:0 ~pos ~rng:(Prng.Xoshiro.create 1L)
  in
  for time = 0 to 26 do
    Alcotest.(check bool) "decide = may_send"
      (Core.Schedule.may_send schedule pos ~time)
      (inst.Netsim.Mac.decide (mk_ctx time))
  done

let test_mac_full_tdma_exclusive () =
  let inst id = Netsim.Mac.full_tdma ~num_nodes:5 ~node_id:id ~pos:(Zgeom.Vec.zero 2)
      ~rng:(Prng.Xoshiro.create 1L) in
  let a = inst 2 in
  for time = 0 to 14 do
    Alcotest.(check bool) "sends iff its turn" (time mod 5 = 2)
      (a.Netsim.Mac.decide (mk_ctx time))
  done

let test_mac_csma_defers_when_busy () =
  let inst = Netsim.Mac.p_csma ~p:1.0 ~node_id:0 ~pos:(Zgeom.Vec.zero 2)
      ~rng:(Prng.Xoshiro.create 1L) in
  Alcotest.(check bool) "defers on busy channel" false
    (inst.Netsim.Mac.decide (mk_ctx ~busy:true 0));
  Alcotest.(check bool) "sends (p=1) on idle channel" true
    (inst.Netsim.Mac.decide (mk_ctx ~busy:false 0))

let test_mac_aloha_backoff () =
  let inst = Netsim.Mac.slotted_aloha ~p:1.0 ~max_backoff_exp:4 ~node_id:0
      ~pos:(Zgeom.Vec.zero 2) ~rng:(Prng.Xoshiro.create 1L) in
  (* p = 1: always sends when no backoff. *)
  Alcotest.(check bool) "sends initially" true (inst.Netsim.Mac.decide (mk_ctx 0));
  (* After a collision, the node eventually sends again within the
     backoff window. *)
  inst.Netsim.Mac.feedback `Collided;
  let sent = ref false in
  for time = 1 to 40 do
    if inst.Netsim.Mac.decide (mk_ctx time) then sent := true
  done;
  Alcotest.(check bool) "retries after backoff" true !sent

(* --- Energy --- *)

let test_energy_model () =
  let m = { Netsim.Energy.tx_cost = 2.0; rx_cost = 0.5; idle_cost = 0.1 } in
  Alcotest.(check (float 1e-9)) "slot energy" (2.0 +. 1.0 +. 0.3)
    (Netsim.Energy.slot_energy m ~transmitters:1 ~receivers:2 ~idlers:3)

(* --- Engine with lattice TDMA: zero collisions, all delivered --- *)

let tiling_for p =
  match Tiling.Search.find_tiling p with
  | Some t -> t
  | None -> Alcotest.fail "prototile should tile"

let run_lattice_tdma ?(width = 9) ?(height = 9) ?(duration = 1500) ?(interval = 40) () =
  let p = Prototile.chebyshev_ball ~dim:2 1 in
  let t = tiling_for p in
  let schedule = Core.Schedule.of_tiling t in
  Netsim.Sim.run
    { (Netsim.Sim.default_config ~mac:(Netsim.Mac.lattice_tdma schedule)) with
      width; height; prototile = p; duration;
      workload = Netsim.Workload.Periodic { interval } }

let test_lattice_tdma_no_collisions () =
  let r = run_lattice_tdma () in
  Alcotest.(check int) "zero collisions" 0 r.Netsim.Sim.stats.Netsim.Stats.collisions;
  Alcotest.(check int) "zero receiver losses" 0 r.Netsim.Sim.stats.Netsim.Stats.receiver_losses;
  Alcotest.(check bool) "traffic flowed" true (r.Netsim.Sim.stats.Netsim.Stats.delivered > 0)

let test_lattice_tdma_low_latency () =
  let r = run_lattice_tdma () in
  (* Worst-case wait for your slot is one period = 9 slots. *)
  Alcotest.(check bool) "latency < period" true
    (r.Netsim.Sim.stats.Netsim.Stats.max_latency < 9)

let test_conservation_all_protocols () =
  let p = Prototile.chebyshev_ball ~dim:2 1 in
  let t = tiling_for p in
  let schedule = Core.Schedule.of_tiling t in
  let protos =
    [ Netsim.Mac.lattice_tdma schedule; Netsim.Mac.full_tdma ~num_nodes:81;
      Netsim.Mac.slotted_aloha ~p:0.2 ~max_backoff_exp:6; Netsim.Mac.p_csma ~p:0.3 ]
  in
  List.iter
    (fun mac ->
      let r =
        Netsim.Sim.run
          { (Netsim.Sim.default_config ~mac) with width = 9; height = 9; prototile = p;
            duration = 1200 }
      in
      Alcotest.(check bool)
        (r.Netsim.Sim.mac_name ^ " conserves packets")
        true (Netsim.Sim.conservation_ok r))
    protos

let test_full_tdma_no_collisions_but_slow () =
  let p = Prototile.chebyshev_ball ~dim:2 1 in
  let r_full =
    Netsim.Sim.run
      { (Netsim.Sim.default_config ~mac:(Netsim.Mac.full_tdma ~num_nodes:81)) with
        width = 9; height = 9; prototile = p; duration = 2000;
        workload = Netsim.Workload.Periodic { interval = 100 } }
  in
  Alcotest.(check int) "full TDMA zero collisions" 0 r_full.Netsim.Sim.stats.Netsim.Stats.collisions;
  let r_lattice = run_lattice_tdma ~duration:2000 ~interval:100 () in
  Alcotest.(check bool) "lattice TDMA lower latency than full TDMA" true
    (r_lattice.Netsim.Sim.stats.Netsim.Stats.mean_latency
    < r_full.Netsim.Sim.stats.Netsim.Stats.mean_latency)

let test_aloha_collides_under_load () =
  let p = Prototile.chebyshev_ball ~dim:2 1 in
  let r =
    Netsim.Sim.run
      { (Netsim.Sim.default_config ~mac:(Netsim.Mac.slotted_aloha ~p:0.4 ~max_backoff_exp:5)) with
        width = 9; height = 9; prototile = p; duration = 1500;
        workload = Netsim.Workload.Periodic { interval = 10 } }
  in
  Alcotest.(check bool) "aloha collides" true (r.Netsim.Sim.stats.Netsim.Stats.collisions > 0)

let test_drifted_tdma_collides () =
  let p = Prototile.chebyshev_ball ~dim:2 1 in
  let t = tiling_for p in
  let schedule = Core.Schedule.of_tiling t in
  let drift v = if Zgeom.Vec.x v mod 2 = 0 then 0 else 4 in
  let r =
    Netsim.Sim.run
      { (Netsim.Sim.default_config ~mac:(Netsim.Mac.lattice_tdma_drifted schedule ~drift_at:drift)) with
        width = 9; height = 9; prototile = p; duration = 1500;
        workload = Netsim.Workload.Periodic { interval = 10 } }
  in
  Alcotest.(check bool) "drift causes collisions" true
    (r.Netsim.Sim.stats.Netsim.Stats.collisions > 0)

let test_zero_drift_equals_plain_tdma () =
  let p = Prototile.chebyshev_ball ~dim:2 1 in
  let t = tiling_for p in
  let schedule = Core.Schedule.of_tiling t in
  let run mac =
    Netsim.Sim.run
      { (Netsim.Sim.default_config ~mac) with width = 8; height = 8; prototile = p;
        duration = 1000 }
  in
  let plain = run (Netsim.Mac.lattice_tdma schedule) in
  let drifted = run (Netsim.Mac.lattice_tdma_drifted schedule ~drift_at:(fun _ -> 0)) in
  Alcotest.(check int) "same deliveries" plain.Netsim.Sim.stats.Netsim.Stats.delivered
    drifted.Netsim.Sim.stats.Netsim.Stats.delivered;
  Alcotest.(check int) "same attempts" plain.Netsim.Sim.stats.Netsim.Stats.attempts
    drifted.Netsim.Sim.stats.Netsim.Stats.attempts

let test_determinism () =
  let a = run_lattice_tdma () and b = run_lattice_tdma () in
  Alcotest.(check int) "same delivered" a.Netsim.Sim.stats.Netsim.Stats.delivered
    b.Netsim.Sim.stats.Netsim.Stats.delivered;
  Alcotest.(check int) "same attempts" a.Netsim.Sim.stats.Netsim.Stats.attempts
    b.Netsim.Sim.stats.Netsim.Stats.attempts

let test_seed_changes_runs () =
  let p = Prototile.chebyshev_ball ~dim:2 1 in
  let run seed =
    Netsim.Sim.run
      { (Netsim.Sim.default_config ~mac:(Netsim.Mac.slotted_aloha ~p:0.3 ~max_backoff_exp:5)) with
        width = 8; height = 8; prototile = p; duration = 800; seed }
  in
  let a = run 1L and b = run 2L in
  Alcotest.(check bool) "different seeds, different attempt counts" true
    (a.Netsim.Sim.stats.Netsim.Stats.attempts <> b.Netsim.Sim.stats.Netsim.Stats.attempts)

let test_queue_overflow_drops () =
  let p = Prototile.chebyshev_ball ~dim:2 1 in
  (* Never transmit: queues fill and drop. *)
  let silent_mac ~node_id:_ ~pos:_ ~rng:_ =
    { Netsim.Mac.name = "silent"; decide = (fun _ -> false); feedback = ignore }
  in
  let r =
    Netsim.Sim.run
      { (Netsim.Sim.default_config ~mac:silent_mac) with width = 4; height = 4; prototile = p;
        duration = 2000; queue_capacity = 4;
        workload = Netsim.Workload.Periodic { interval = 5 } }
  in
  Alcotest.(check bool) "drops happen" true (r.Netsim.Sim.drops > 0);
  Alcotest.(check bool) "conservation with drops" true (Netsim.Sim.conservation_ok r);
  Alcotest.(check int) "nothing delivered" 0 r.Netsim.Sim.stats.Netsim.Stats.delivered

(* --- Trace --- *)

let test_trace_ring_buffer () =
  let tr = Netsim.Trace.create ~capacity:3 () in
  for i = 0 to 4 do
    Netsim.Trace.record tr (Netsim.Trace.Arrived { node = i; time = i })
  done;
  Alcotest.(check int) "length capped" 3 (Netsim.Trace.length tr);
  Alcotest.(check int) "dropped counted" 2 (Netsim.Trace.dropped_events tr);
  match Netsim.Trace.events tr with
  | [ Netsim.Trace.Arrived { node = first; _ }; _; Netsim.Trace.Arrived { node = last; _ } ] ->
    Alcotest.(check int) "oldest kept is #2" 2 first;
    Alcotest.(check int) "newest is #4" 4 last
  | _ -> Alcotest.fail "unexpected event shapes"

let test_trace_engine_consistency () =
  (* Event counts in the trace must match the statistics. *)
  let p = Prototile.chebyshev_ball ~dim:2 1 in
  let t = tiling_for p in
  let schedule = Core.Schedule.of_tiling t in
  let tr = Netsim.Trace.create () in
  let r =
    Netsim.Sim.run
      { (Netsim.Sim.default_config ~mac:(Netsim.Mac.lattice_tdma schedule)) with
        width = 6; height = 6; prototile = p; duration = 600; trace = Some tr;
        workload = Netsim.Workload.Periodic { interval = 30 } }
  in
  let arrivals = ref 0 and delivered = ref 0 and collided = ref 0 in
  List.iter
    (function
      | Netsim.Trace.Arrived _ -> incr arrivals
      | Netsim.Trace.Sent { outcome = `Delivered; _ } -> incr delivered
      | Netsim.Trace.Sent _ -> incr collided
      | Netsim.Trace.Dropped _ | Netsim.Trace.Died _ -> ())
    (Netsim.Trace.events tr);
  Alcotest.(check int) "arrivals match" r.Netsim.Sim.stats.Netsim.Stats.arrivals !arrivals;
  Alcotest.(check int) "deliveries match" r.Netsim.Sim.stats.Netsim.Stats.delivered !delivered;
  Alcotest.(check int) "collisions match" r.Netsim.Sim.stats.Netsim.Stats.collisions !collided

let test_trace_timeline () =
  let tr = Netsim.Trace.create () in
  Netsim.Trace.record tr (Netsim.Trace.Arrived { node = 0; time = 1 });
  Netsim.Trace.record tr (Netsim.Trace.Sent { node = 0; time = 3; outcome = `Delivered });
  Netsim.Trace.record tr (Netsim.Trace.Sent { node = 0; time = 5; outcome = `Collided });
  Netsim.Trace.record tr (Netsim.Trace.Sent { node = 1; time = 2; outcome = `Delivered });
  Alcotest.(check string) "node 0 timeline" ".a.D.C" (Netsim.Trace.timeline tr ~node:0 ~horizon:6);
  Alcotest.(check string) "node 1 timeline" "..D..." (Netsim.Trace.timeline tr ~node:1 ~horizon:6);
  let log = Netsim.Trace.to_log tr in
  Alcotest.(check bool) "log nonempty" true (String.length log > 0)

(* --- Analytic cross-validation --- *)

let test_analysis_matches_simulation () =
  (* Poisson arrivals at low rate: each packet sees a uniformly random
     phase, so mean latency should approach (m - 1) / 2 with m = 9. *)
  let p = Prototile.chebyshev_ball ~dim:2 1 in
  let t = tiling_for p in
  let schedule = Core.Schedule.of_tiling t in
  let r =
    Netsim.Sim.run
      { (Netsim.Sim.default_config ~mac:(Netsim.Mac.lattice_tdma schedule)) with
        width = 9; height = 9; prototile = p; duration = 30_000;
        workload = Netsim.Workload.Poisson { rate = 0.005 }; seed = 77L }
  in
  let predicted = Core.Analysis.mean_latency_uniform_arrival ~m:9 in
  Alcotest.(check bool) "mean latency near (m-1)/2" true
    (Float.abs (r.Netsim.Sim.stats.Netsim.Stats.mean_latency -. predicted) < 0.5);
  (* The worst-case formula assumes an empty queue; rare back-to-back
     Poisson arrivals add whole periods, so allow a few. *)
  Alcotest.(check bool) "p95 latency <= m-1 (queue empty for most packets)" true
    (r.Netsim.Sim.stats.Netsim.Stats.p95_latency
    <= float_of_int (Core.Analysis.worst_case_latency ~m:9));
  Alcotest.(check bool) "max latency bounded by a few periods" true
    (r.Netsim.Sim.stats.Netsim.Stats.max_latency <= 4 * 9)

let test_analysis_stability_boundary () =
  (* interval = m is stable (drains exactly); interval < m builds backlog. *)
  let p = Prototile.chebyshev_ball ~dim:2 1 in
  let t = tiling_for p in
  let schedule = Core.Schedule.of_tiling t in
  let run interval =
    Netsim.Sim.run
      { (Netsim.Sim.default_config ~mac:(Netsim.Mac.lattice_tdma schedule)) with
        width = 9; height = 9; prototile = p; duration = 4000; queue_capacity = 1_000_000;
        workload = Netsim.Workload.Periodic { interval }; seed = 78L }
  in
  Alcotest.(check bool) "stable predicate" true (Core.Analysis.is_stable ~m:9 ~interval:9);
  Alcotest.(check bool) "unstable predicate" false (Core.Analysis.is_stable ~m:9 ~interval:8);
  let stable = run 9 and unstable = run 6 in
  Alcotest.(check bool) "interval=m keeps queues bounded" true (stable.Netsim.Sim.backlog < 200);
  Alcotest.(check bool) "interval<m builds backlog" true
    (unstable.Netsim.Sim.backlog > 5 * stable.Netsim.Sim.backlog)

(* --- Channel ablations and fairness --- *)

let test_loss_causes_fades_not_collisions () =
  let p = Prototile.chebyshev_ball ~dim:2 1 in
  let t = tiling_for p in
  let schedule = Core.Schedule.of_tiling t in
  let r =
    Netsim.Sim.run
      { (Netsim.Sim.default_config ~mac:(Netsim.Mac.lattice_tdma schedule)) with
        width = 9; height = 9; prototile = p; duration = 2000; loss_prob = 0.05;
        workload = Netsim.Workload.Periodic { interval = 30 } }
  in
  Alcotest.(check int) "no collisions under loss" 0 r.Netsim.Sim.stats.Netsim.Stats.collisions;
  Alcotest.(check bool) "fades happen" true (r.Netsim.Sim.stats.Netsim.Stats.fades > 0);
  Alcotest.(check bool) "conservation" true (Netsim.Sim.conservation_ok r)

let test_capture_helps_aloha () =
  (* Needs a prototile with varied sender-receiver distances: with the
     radius-1 ball every interferer is at distance exactly 1 and no
     unique nearest transmitter exists, so use radius 2. *)
  let p = Prototile.chebyshev_ball ~dim:2 2 in
  let run capture =
    Netsim.Sim.run
      { (Netsim.Sim.default_config ~mac:(Netsim.Mac.slotted_aloha ~p:0.3 ~max_backoff_exp:5)) with
        width = 9; height = 9; prototile = p; duration = 2000; capture;
        workload = Netsim.Workload.Periodic { interval = 10 } }
  in
  let without = run false and with_capture = run true in
  Alcotest.(check bool) "capture reduces receiver losses" true
    (with_capture.Netsim.Sim.stats.Netsim.Stats.receiver_losses
    < without.Netsim.Sim.stats.Netsim.Stats.receiver_losses)

let test_capture_does_not_affect_lattice_tdma () =
  let p = Prototile.chebyshev_ball ~dim:2 1 in
  let t = tiling_for p in
  let schedule = Core.Schedule.of_tiling t in
  let run capture =
    Netsim.Sim.run
      { (Netsim.Sim.default_config ~mac:(Netsim.Mac.lattice_tdma schedule)) with
        width = 9; height = 9; prototile = p; duration = 1500; capture }
  in
  let a = run false and b = run true in
  Alcotest.(check int) "same deliveries" a.Netsim.Sim.stats.Netsim.Stats.delivered
    b.Netsim.Sim.stats.Netsim.Stats.delivered;
  Alcotest.(check int) "still zero collisions" 0 b.Netsim.Sim.stats.Netsim.Stats.collisions

let test_fairness_lattice_tdma () =
  let r = run_lattice_tdma ~duration:3000 () in
  Alcotest.(check bool) "lattice TDMA nearly perfectly fair" true (r.Netsim.Sim.fairness > 0.99)

let test_heterogeneous_d1_deployment () =
  (* Theorem 2's schedule in the packet simulator with per-position
     neighborhoods (deployment rule D1). *)
  let strong = Prototile.rect 2 2 in
  let weak = Prototile.of_cells [ Zgeom.Vec.zero 2 ] in
  let period = Sublattice.of_basis [| [| 5; 0 |]; [| 0; 2 |] |] in
  let multi =
    Tiling.Multi.make_exn ~period
      [ { Tiling.Multi.tile = strong;
          piece_offsets = [ Zgeom.Vec.zero 2; Zgeom.Vec.make2 2 0 ] };
        { Tiling.Multi.tile = weak;
          piece_offsets = [ Zgeom.Vec.make2 4 0; Zgeom.Vec.make2 4 1 ] } ]
  in
  let schedule = Core.Schedule.of_multi multi in
  let tiles = Array.of_list (Tiling.Multi.prototiles multi) in
  let neighborhoods v =
    let k, _, _ = Tiling.Multi.tile_of multi v in
    tiles.(k)
  in
  let r =
    Netsim.Sim.run
      { (Netsim.Sim.default_config ~mac:(Netsim.Mac.lattice_tdma schedule)) with
        width = 10; height = 10; neighborhoods = Some neighborhoods; duration = 2000;
        workload = Netsim.Workload.Periodic { interval = 20 } }
  in
  Alcotest.(check int) "zero collisions with mixed hardware" 0
    r.Netsim.Sim.stats.Netsim.Stats.collisions;
  Alcotest.(check bool) "traffic flowed" true (r.Netsim.Sim.stats.Netsim.Stats.delivered > 0);
  Alcotest.(check bool) "conservation" true (Netsim.Sim.conservation_ok r)

(* --- Timesync --- *)

let timesync_base resync =
  let p = Prototile.chebyshev_ball ~dim:2 1 in
  let t = tiling_for p in
  { Netsim.Timesync.width = 8; height = 8; prototile = p;
    schedule = Core.Schedule.of_tiling t; root = Zgeom.Vec.make2 4 4; resync_period = resync;
    drift_ppm = 300.0; hop_jitter = 0.01; duration = 6000; seed = 3L }

let test_timesync_wave_reaches_everyone () =
  let r = Netsim.Timesync.run (timesync_base 500) in
  Alcotest.(check bool) "sync latency positive and finite" true
    (r.Netsim.Timesync.sync_latency >= 0 && r.Netsim.Timesync.sync_latency < 500);
  Alcotest.(check bool) "beacons were sent" true (r.Netsim.Timesync.beacons_sent > 0)

let test_timesync_bounded_error_with_resync () =
  let r = Netsim.Timesync.run (timesync_base 500) in
  (* 300 ppm over 500 slots = 0.15 slots of drift plus small jitter. *)
  Alcotest.(check bool) "max error below half a slot" true
    (r.Netsim.Timesync.max_clock_error < 0.5)

let test_timesync_no_resync_causes_violations () =
  let with_sync = Netsim.Timesync.run (timesync_base 500) in
  let without = Netsim.Timesync.run { (timesync_base 0) with duration = 20000 } in
  Alcotest.(check bool) "unsynced has far more violations" true
    (without.Netsim.Timesync.tdma_violations > 10 * (with_sync.Netsim.Timesync.tdma_violations + 1))

let test_timesync_perfect_clocks_no_violations_after_sync () =
  (* No drift, no jitter: after the first wave, zero further violations.
     Compare total violations of a long run with a short run - the
     difference window is fully synced. *)
  let cfg resync duration =
    { (timesync_base resync) with drift_ppm = 0.0; hop_jitter = 0.0; duration }
  in
  let short = Netsim.Timesync.run (cfg 10000 3000) in
  let long = Netsim.Timesync.run (cfg 10000 6000) in
  Alcotest.(check int) "no violations in the synced window"
    short.Netsim.Timesync.tdma_violations long.Netsim.Timesync.tdma_violations

(* --- Mobility / Mobile sim --- *)

let test_walker_stays_in_arena () =
  let arena = { Netsim.Mobility.x_min = 0.0; x_max = 5.0; y_min = 0.0; y_max = 5.0 } in
  let rng = Prng.Xoshiro.create 31L in
  let w =
    Netsim.Mobility.create arena ~speed:0.4 ~pause:2 ~rng ~start:{ Voronoi.px = 2.0; py = 2.0 }
  in
  for _ = 1 to 500 do
    Netsim.Mobility.step w;
    let p = Netsim.Mobility.position w in
    Alcotest.(check bool) "inside arena" true
      (0.0 <= p.Voronoi.px && p.Voronoi.px <= 5.0 && 0.0 <= p.Voronoi.py && p.Voronoi.py <= 5.0)
  done

let test_walker_moves () =
  let arena = { Netsim.Mobility.x_min = 0.0; x_max = 5.0; y_min = 0.0; y_max = 5.0 } in
  let rng = Prng.Xoshiro.create 32L in
  let start = { Voronoi.px = 2.0; py = 2.0 } in
  let w = Netsim.Mobility.create arena ~speed:0.4 ~pause:0 ~rng ~start in
  let moved = ref false in
  for _ = 1 to 50 do
    Netsim.Mobility.step w;
    if Netsim.Mobility.position w <> start then moved := true
  done;
  Alcotest.(check bool) "walker moves" true !moved

let test_mobile_sim_zero_collisions () =
  let p = Prototile.rect 2 2 in
  let t =
    Tiling.Single.make_exn ~prototile:p
      ~period:(Sublattice.of_basis [| [| 2; 0 |]; [| 0; 2 |] |])
      ~offsets:[ Zgeom.Vec.zero 2 ]
  in
  let r =
    Netsim.Mobile_sim.run
      { tiling = t; arena_width = 10.0; num_sensors = 30; radius = 0.45; speed = 0.3; pause = 2;
        send_interval = 8; duration = 1000; seed = 5L }
  in
  Alcotest.(check int) "zero collisions (paper's conclusion)" 0 r.Netsim.Mobile_sim.collisions;
  Alcotest.(check bool) "some attempts happened" true (r.Netsim.Mobile_sim.attempts > 0);
  Alcotest.(check bool) "eligibility fraction in (0,1)" true
    (r.Netsim.Mobile_sim.eligible_slot_fraction > 0.0
    && r.Netsim.Mobile_sim.eligible_slot_fraction < 1.0)

(* --- Stats percentiles --- *)

let test_latency_percentiles () =
  let s = Netsim.Stats.create () in
  (* Record 1..100 in a scrambled order; snapshot sorts internally. *)
  List.iter
    (fun l -> Netsim.Stats.record_delivery s ~latency:l)
    (List.init 100 (fun i -> ((i * 37) mod 100) + 1));
  let snap = Netsim.Stats.snapshot s in
  (* Exact quantile at index floor(p * n) of the sorted array. *)
  Alcotest.(check (float 0.0)) "p50" 51.0 snap.Netsim.Stats.p50_latency;
  Alcotest.(check (float 0.0)) "p95" 96.0 snap.Netsim.Stats.p95_latency;
  Alcotest.(check (float 0.0)) "p99" 100.0 snap.Netsim.Stats.p99_latency;
  Alcotest.(check int) "max" 100 snap.Netsim.Stats.max_latency

let test_percentiles_empty () =
  let snap = Netsim.Stats.snapshot (Netsim.Stats.create ()) in
  Alcotest.(check (float 0.0)) "p50 of nothing" 0.0 snap.Netsim.Stats.p50_latency;
  Alcotest.(check (float 0.0)) "p99 of nothing" 0.0 snap.Netsim.Stats.p99_latency

let () =
  Alcotest.run "netsim"
    [
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "peek" `Quick test_heap_peek;
          Alcotest.test_case "random vs sort" `Quick test_heap_random_against_sort;
        ] );
      ( "workload",
        [
          Alcotest.test_case "periodic" `Quick test_periodic_workload;
          Alcotest.test_case "poisson monotone" `Quick test_poisson_workload_monotone;
          Alcotest.test_case "bursty" `Quick test_bursty_workload;
          Alcotest.test_case "expected rate" `Quick test_expected_rate;
          Alcotest.test_case "poisson empirical rate" `Slow test_poisson_empirical_rate;
        ] );
      ( "mac",
        [
          Alcotest.test_case "lattice = schedule" `Quick test_mac_lattice_matches_schedule;
          Alcotest.test_case "full tdma exclusive" `Quick test_mac_full_tdma_exclusive;
          Alcotest.test_case "csma defers" `Quick test_mac_csma_defers_when_busy;
          Alcotest.test_case "aloha backoff" `Quick test_mac_aloha_backoff;
        ] );
      ("energy", [ Alcotest.test_case "slot energy" `Quick test_energy_model ]);
      ( "stats",
        [
          Alcotest.test_case "latency percentiles" `Quick test_latency_percentiles;
          Alcotest.test_case "percentiles when empty" `Quick test_percentiles_empty;
        ] );
      ( "engine",
        [
          Alcotest.test_case "lattice TDMA collision-free" `Quick test_lattice_tdma_no_collisions;
          Alcotest.test_case "lattice TDMA latency" `Quick test_lattice_tdma_low_latency;
          Alcotest.test_case "conservation (all MACs)" `Slow test_conservation_all_protocols;
          Alcotest.test_case "full TDMA slow" `Slow test_full_tdma_no_collisions_but_slow;
          Alcotest.test_case "aloha collides" `Quick test_aloha_collides_under_load;
          Alcotest.test_case "drifted TDMA collides" `Quick test_drifted_tdma_collides;
          Alcotest.test_case "zero drift = plain" `Quick test_zero_drift_equals_plain_tdma;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_changes_runs;
          Alcotest.test_case "queue overflow" `Quick test_queue_overflow_drops;
        ] );
      ( "trace",
        [
          Alcotest.test_case "ring buffer" `Quick test_trace_ring_buffer;
          Alcotest.test_case "engine consistency" `Quick test_trace_engine_consistency;
          Alcotest.test_case "timeline" `Quick test_trace_timeline;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "latency formulas vs sim" `Slow test_analysis_matches_simulation;
          Alcotest.test_case "stability boundary" `Quick test_analysis_stability_boundary;
        ] );
      ( "channel",
        [
          Alcotest.test_case "loss => fades, not collisions" `Quick
            test_loss_causes_fades_not_collisions;
          Alcotest.test_case "capture helps aloha" `Quick test_capture_helps_aloha;
          Alcotest.test_case "capture neutral for lattice TDMA" `Quick
            test_capture_does_not_affect_lattice_tdma;
          Alcotest.test_case "lattice TDMA fairness" `Quick test_fairness_lattice_tdma;
          Alcotest.test_case "heterogeneous D1 deployment" `Quick
            test_heterogeneous_d1_deployment;
        ] );
      ( "timesync",
        [
          Alcotest.test_case "wave reaches everyone" `Quick test_timesync_wave_reaches_everyone;
          Alcotest.test_case "bounded error with resync" `Quick
            test_timesync_bounded_error_with_resync;
          Alcotest.test_case "no resync causes violations" `Slow
            test_timesync_no_resync_causes_violations;
          Alcotest.test_case "perfect clocks stay clean" `Quick
            test_timesync_perfect_clocks_no_violations_after_sync;
        ] );
      ( "mobility",
        [
          Alcotest.test_case "arena bounds" `Quick test_walker_stays_in_arena;
          Alcotest.test_case "walker moves" `Quick test_walker_moves;
          Alcotest.test_case "mobile sim zero collisions" `Slow test_mobile_sim_zero_collisions;
        ] );
    ]
