(* Tests for the domain pool and for the determinism contract of every
   parallel entry point: at jobs = 1, 2, 4 and 8, under both the static
   and the work-stealing scheduler, the search engines and the
   simulation sweep must return values structurally identical to the
   sequential run - not just equal solution sets, the same lists in the
   same order.  The steal-schedule fuzzer additionally randomizes victim
   selection to exercise schedules round-robin stealing never takes. *)

open Lattice

(* ---------- pool primitives ---------- *)

let test_map_matches_list_map () =
  Parallel.with_pool ~jobs:4 (fun pool ->
      let xs = List.init 100 Fun.id in
      let f x = (x * x) + 1 in
      Alcotest.(check (list int)) "map = List.map" (List.map f xs) (Parallel.map pool f xs);
      Alcotest.(check (list int)) "empty" [] (Parallel.map pool f []))

let test_map_array_indexing () =
  Parallel.with_pool ~jobs:3 (fun pool ->
      let xs = Array.init 257 string_of_int in
      let ys = Parallel.map_array pool (fun s -> s ^ "!") xs in
      Array.iteri
        (fun i y -> Alcotest.(check string) "slot i holds f xs.(i)" (xs.(i) ^ "!") y)
        ys)

let test_filter_concat_map () =
  Parallel.with_pool ~jobs:4 (fun pool ->
      let xs = List.init 50 Fun.id in
      let f x = if x mod 3 = 0 then Some (-x) else None in
      Alcotest.(check (list int)) "filter_map order kept" (List.filter_map f xs)
        (Parallel.filter_map pool f xs);
      let g x = List.init (x mod 4) (fun i -> (10 * x) + i) in
      Alcotest.(check (list int)) "concat_map order kept" (List.concat_map g xs)
        (Parallel.concat_map pool g xs))

let test_jobs_one_inline () =
  Parallel.with_pool ~jobs:1 (fun pool ->
      Alcotest.(check int) "jobs" 1 (Parallel.jobs pool);
      let witness = Atomic.make [] in
      Parallel.parallel_for pool ~n:5 (fun i -> Atomic.set witness (i :: Atomic.get witness));
      (* jobs = 1 runs inline on this domain, so the order is the loop's. *)
      Alcotest.(check (list int)) "inline order" [ 4; 3; 2; 1; 0 ] (Atomic.get witness))

exception Boom of int

let test_exception_propagates_pool_survives () =
  Parallel.with_pool ~jobs:4 (fun pool ->
      (match Parallel.map pool (fun x -> if x = 13 then raise (Boom x) else x) (List.init 20 Fun.id) with
      | _ -> Alcotest.fail "expected Boom to propagate"
      | exception Boom 13 -> ());
      (* The batch drained; the pool must still work. *)
      Alcotest.(check (list int)) "pool usable after exception" [ 0; 2; 4 ]
        (Parallel.map pool (fun x -> 2 * x) [ 0; 1; 2 ]))

let test_reentrant_nesting () =
  Parallel.with_pool ~jobs:4 (fun pool ->
      (* An inner batch on the same pool must fall back to inline
         execution instead of deadlocking on the busy workers. *)
      let got =
        Parallel.map pool
          (fun x -> List.fold_left ( + ) 0 (Parallel.map pool (fun y -> x * y) [ 1; 2; 3 ]))
          [ 1; 2; 3; 4 ]
      in
      Alcotest.(check (list int)) "nested map" [ 6; 12; 18; 24 ] got)

let test_shutdown_idempotent_then_inline () =
  let pool = Parallel.create ~jobs:3 in
  Alcotest.(check (list int)) "before shutdown" [ 1; 2; 3 ]
    (Parallel.map pool (fun x -> x + 1) [ 0; 1; 2 ]);
  Parallel.shutdown pool;
  Parallel.shutdown pool;
  Alcotest.(check (list int)) "after shutdown runs inline" [ 1; 2; 3 ]
    (Parallel.map pool (fun x -> x + 1) [ 0; 1; 2 ])

let test_set_default_jobs () =
  Parallel.set_default_jobs 2;
  Alcotest.(check int) "resized" 2 (Parallel.jobs (Parallel.default ()));
  Parallel.set_default_jobs 1;
  Alcotest.(check int) "back to sequential" 1 (Parallel.jobs (Parallel.default ()))

(* ---------- determinism: searches and sweeps ---------- *)

(* Run [f] at jobs = 1, 2, 4 and require structural identity with the
   sequential result. *)
let check_jobs_invariant name f =
  let reference = Parallel.with_pool ~jobs:1 f in
  List.iter
    (fun jobs ->
      let v = Parallel.with_pool ~jobs f in
      Alcotest.(check bool)
        (Printf.sprintf "%s identical at jobs=%d" name jobs)
        true (v = reference))
    [ 2; 4 ]

let test_lattice_tilings_deterministic () =
  List.iter
    (fun (name, p) ->
      check_jobs_invariant
        ("lattice_tilings " ^ name)
        (fun pool -> Tiling.Search.lattice_tilings ~pool p))
    [ ("cheb1", Prototile.chebyshev_ball ~dim:2 1); ("cheb2", Prototile.chebyshev_ball ~dim:2 2);
      ("manhattan2", Prototile.manhattan_ball ~dim:2 2); ("tet-S", Prototile.tetromino `S) ]

let sz_period = lazy (Sublattice.of_basis [| [| 4; 0 |]; [| 0; 4 |] |])

let engines : (Tiling.Search.engine * string) list =
  [ (`Backtracking, "bt"); (`Dlx, "dlx"); (`Bitmask, "bitmask") ]

let test_cover_torus_deterministic () =
  let period = Lazy.force sz_period in
  let prototiles = [ Prototile.tetromino `S; Prototile.tetromino `Z ] in
  List.iter
    (fun (engine, ename) ->
      (* Both the truncated list (budget bites mid-merge) and the full
         enumeration must be reproduced. *)
      List.iter
        (fun max_solutions ->
          check_jobs_invariant
            (Printf.sprintf "cover_torus %s max=%d" ename max_solutions)
            (fun pool ->
              Tiling.Search.cover_torus ~period ~prototiles ~max_solutions ~engine ~pool ()))
        [ 7; 50; 1000 ])
    engines

let test_cover_torus_multi_prototile_deterministic () =
  (* A heterogeneous instance: 2x2 squares plus single-cell fillers on a
     non-square quotient, where root placements use different tiles. *)
  let period = Sublattice.of_basis [| [| 5; 0 |]; [| 0; 2 |] |] in
  let prototiles = [ Prototile.rect 2 2; Prototile.of_cells [ Zgeom.Vec.zero 2 ] ] in
  List.iter
    (fun (engine, _) ->
      check_jobs_invariant "cover_torus squares+singles" (fun pool ->
          Tiling.Search.cover_torus ~period ~prototiles ~max_solutions:200 ~engine ~pool ()))
    engines

let rec take n = function [] -> [] | x :: tl -> if n <= 0 then [] else x :: take (n - 1) tl

let scheds : (Parallel.sched * string) list = [ (`Static, "static"); (`Steal, "steal") ]

let test_three_way_engine_oracle () =
  (* The strongest form of the engine contract: over a randomized corpus
     of torus instances, all three engines under both schedulers return
     the same ORDERED solution list, at every pool size, and truncation
     to any [max_solutions] is a prefix of that list.  Instance
     generation mirrors test_tiling's differential corpus (one
     Splitmix64 stream, so a failure replays from the loop index).
     Pools are created once per size: the matrix is
     scheduler x engine x jobs x prefix, and per-solve domain spawning
     would dominate it. *)
  let sm = Prng.Splitmix64.create 2027L in
  let draw bound =
    Int64.to_int (Int64.unsigned_rem (Prng.Splitmix64.next sm) (Int64.of_int bound))
  in
  let pools = List.map (fun jobs -> (jobs, Parallel.create ~jobs)) [ 1; 2; 4; 8 ] in
  Fun.protect
    ~finally:(fun () -> List.iter (fun (_, pool) -> Parallel.shutdown pool) pools)
    (fun () ->
      for instance = 1 to 12 do
        let a = 1 + draw 3 in
        let b = 1 + draw 3 in
        let b = if a * b < 2 then 2 else b in
        let c = draw a in
        let period = Sublattice.of_basis [| [| a; 0 |]; [| c; b |] |] in
        let rng = Prng.Xoshiro.create (Prng.Splitmix64.next sm) in
        let poly () = Randomtile.polyomino rng ~cells:(2 + draw 3) in
        (* A single-cell filler keeps every instance satisfiable. *)
        let prototiles =
          (poly () :: (if draw 2 = 0 then [ poly () ] else []))
          @ [ Prototile.of_cells [ Zgeom.Vec.zero 2 ] ]
        in
        let solve ~engine ~sched ~pool ~max_solutions =
          Tiling.Search.cover_torus ~period ~prototiles ~max_solutions ~engine ~sched ~pool ()
        in
        let reference =
          solve ~engine:`Bitmask ~sched:`Static ~pool:(List.assoc 1 pools)
            ~max_solutions:100_000
        in
        let len = List.length reference in
        (* Every short prefix, then a sparse ladder up to and past the
           full enumeration - the budget must bite correctly at every
           boundary without the matrix exploding. *)
        let prefixes =
          List.sort_uniq Stdlib.compare
            (List.filter (fun m -> m >= 1) [ 1; 2; 3; 5; 8; 13; len - 1; len; len + 7 ])
        in
        List.iter
          (fun (engine, ename) ->
            List.iter
              (fun (sched, sname) ->
                List.iter
                  (fun (jobs, pool) ->
                    let full = solve ~engine ~sched ~pool ~max_solutions:100_000 in
                    Alcotest.(check bool)
                      (Printf.sprintf "instance %d: %s/%s jobs=%d = reference" instance ename
                         sname jobs)
                      true (full = reference);
                    List.iter
                      (fun m ->
                        let truncated = solve ~engine ~sched ~pool ~max_solutions:m in
                        Alcotest.(check bool)
                          (Printf.sprintf "instance %d: %s/%s jobs=%d max=%d is a prefix"
                             instance ename sname jobs m)
                          true
                          (truncated = take m reference))
                      prefixes)
                  pools)
              scheds)
          engines
      done)

let test_count_matches_enumeration () =
  (* [count_torus_covers] = length of the full [cover_torus] enumeration,
     for every engine and pool size (the counting path skips all
     materialization, so it exercises different code). *)
  let check label ~period ~prototiles =
    let expected =
      List.length (Tiling.Search.cover_torus ~period ~prototiles ~max_solutions:max_int ())
    in
    List.iter
      (fun (engine, ename) ->
        List.iter
          (fun jobs ->
            let n =
              Parallel.with_pool ~jobs (fun pool ->
                  Tiling.Search.count_torus_covers ~period ~prototiles ~engine ~pool ())
            in
            Alcotest.(check int) (Printf.sprintf "%s: %s jobs=%d" label ename jobs) expected n)
          [ 1; 2; 4 ])
      engines
  in
  check "S/Z 4x4" ~period:(Lazy.force sz_period)
    ~prototiles:[ Prototile.tetromino `S; Prototile.tetromino `Z ];
  check "squares+singles 5x2"
    ~period:(Sublattice.of_basis [| [| 5; 0 |]; [| 0; 2 |] |])
    ~prototiles:[ Prototile.rect 2 2; Prototile.of_cells [ Zgeom.Vec.zero 2 ] ];
  (* Unsatisfiable instance: a domino can't cover an odd quotient. *)
  check "domino 3x1"
    ~period:(Sublattice.of_basis [| [| 3; 0 |]; [| 0; 1 |] |])
    ~prototiles:[ Prototile.rect 2 1 ]

(* ---------- steal-schedule fuzzer ---------- *)

(* A self-splitting range task: enumerate [lo, hi), and whenever a thief
   is starving give away the upper half as a fresh task.  Chunks and
   spawned tasks are keyed by their start index, so key order is numeric
   order and the merged output must be the plain 0..n-1 enumeration no
   matter how the range was carved up.  This is the same
   key-the-continuation discipline the bitmask engine uses, in the
   smallest form that still exercises it. *)
let rec range_body ~leaf ~lo ~hi ctx =
  let hi = ref hi in
  let i = ref lo in
  let acc = ref [] in
  while !i < !hi do
    if Parallel.Steal.should_split ctx && !hi - !i > 2 then begin
      let mid = (!i + !hi + 1) / 2 in
      let top = !hi in
      Parallel.Steal.spawn ctx ~key:[ mid ] (range_body ~leaf ~lo:mid ~hi:top);
      hi := mid
    end;
    acc := leaf !i :: !acc;
    incr i
  done;
  [ ([ lo ], List.rev !acc) ]

let test_steal_schedule_fuzzer () =
  (* ~100 seeded runs with victim selection driven off a Xoshiro stream
     (mutex-protected: the hook runs concurrently on worker domains).
     Whatever steal schedule the stream induces, the merged output must
     be bit-identical to the sequential enumeration.  Task sizes are
     deliberately lopsided so thieves starve and force lazy splits. *)
  let n = 1000 in
  (* Leaves burn a couple of microseconds each so the fat task lives
     long enough for thieves to starve against it even on one core -
     with trivial leaves the lazy-split path almost never fires. *)
  let leaf i =
    let h = ref i in
    for _ = 1 to 2000 do
      h := (!h * 1103515245) + 12345
    done;
    !h lxor i
  in
  let expected = List.init n leaf in
  let pools = List.map (fun jobs -> (jobs, Parallel.create ~jobs)) [ 2; 4; 8 ] in
  Fun.protect
    ~finally:(fun () -> List.iter (fun (_, pool) -> Parallel.shutdown pool) pools)
    (fun () ->
      for seed = 1 to 100 do
        let jobs, pool = List.nth pools (seed mod 3) in
        let rng = Prng.Xoshiro.create (Int64.of_int (0x5eed + seed)) in
        let mu = Mutex.create () in
        let victim ~thief:_ ~round:_ ~victims =
          Mutex.lock mu;
          let v = Prng.Xoshiro.int rng victims in
          Mutex.unlock mu;
          v
        in
        (* One fat task and two slivers: the fat one must be stolen from
           and re-split for the others to ever eat. *)
        let cuts = [ (0, n - 100); (n - 100, n - 50); (n - 50, n) ] in
        let tasks =
          Array.of_list
            (List.map (fun (lo, hi) -> ([ lo ], range_body ~leaf ~lo ~hi)) cuts)
        in
        let weights = Array.of_list (List.map (fun (lo, hi) -> float (hi - lo)) cuts) in
        let chunks = Parallel.Steal.run pool ~victim ~weights tasks in
        let got = List.concat_map snd chunks in
        Alcotest.(check (list int))
          (Printf.sprintf "seed %d jobs=%d merged output" seed jobs)
          expected got
      done)

(* ---------- adversarial skewed instance (EXP-P3) ---------- *)

let test_skew_instance () =
  (* The benchmark's skewed instance really is skewed - one root branch
     owns at least 90% of the covers - and both schedulers agree with
     the sequential count and enumeration on it. *)
  let n = 20 in
  let share = Microbench.skew_root_share ~n in
  Alcotest.(check bool)
    (Printf.sprintf "fat root branch share %.3f >= 0.9" share)
    true (share >= 0.9);
  let period, prototiles = Microbench.skew_instance ~n in
  let expected = 1 + (n * n) in
  let reference =
    Parallel.with_pool ~jobs:1 (fun pool ->
        Tiling.Search.cover_torus ~period ~prototiles ~max_solutions:max_int ~pool ())
  in
  Alcotest.(check int) "cover count is 1 + n^2" expected (List.length reference);
  List.iter
    (fun (sched, sname) ->
      List.iter
        (fun jobs ->
          Parallel.with_pool ~jobs (fun pool ->
              Alcotest.(check int)
                (Printf.sprintf "count %s jobs=%d" sname jobs)
                expected
                (Tiling.Search.count_torus_covers ~period ~prototiles ~pool ~sched ());
              Alcotest.(check bool)
                (Printf.sprintf "enumeration %s jobs=%d identical" sname jobs)
                true
                (Tiling.Search.cover_torus ~period ~prototiles ~max_solutions:max_int ~pool
                   ~sched ()
                = reference)))
        [ 2; 4 ])
    scheds

let test_chromatic_number_deterministic () =
  (* Random graphs of varying density; the parallel k-colorability
     decision must agree with the sequential branch and bound. *)
  let rng = Prng.Xoshiro.create 2026L in
  for n = 4 to 12 do
    let adj = Array.make_matrix n n false in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        if Prng.Xoshiro.bernoulli rng 0.4 then begin
          adj.(i).(j) <- true;
          adj.(j).(i) <- true
        end
      done
    done;
    check_jobs_invariant
      (Printf.sprintf "chromatic_number n=%d" n)
      (fun pool -> Core.Optimality.chromatic_number ~pool adj)
  done

let test_ground_rule_minimum_deterministic () =
  let period = Lazy.force sz_period in
  let prototiles = [ Prototile.tetromino `S; Prototile.tetromino `Z ] in
  let sols = Tiling.Search.cover_torus ~period ~prototiles ~max_solutions:3 () in
  List.iter
    (fun m ->
      check_jobs_invariant "ground_rule_minimum" (fun pool ->
          Core.Optimality.ground_rule_minimum ~pool m))
    sols

let test_run_sweep_deterministic () =
  let prototile = Prototile.chebyshev_ball ~dim:2 1 in
  let tiling = Option.get (Tiling.Search.find_tiling prototile) in
  let mac = Netsim.Mac.lattice_tdma (Core.Schedule.of_tiling tiling) in
  let cfg =
    { (Netsim.Sim.default_config ~mac) with width = 8; height = 8; prototile; duration = 500 }
  in
  let seeds = List.init 5 (fun i -> Int64.of_int (100 + i)) in
  (* The sweep must equal mapping the sequential runner over the seeds... *)
  let reference = List.map (fun seed -> Netsim.Sim.run { cfg with seed }) seeds in
  Alcotest.(check bool) "sweep = sequential map" true
    (Parallel.with_pool ~jobs:1 (fun pool -> Netsim.Sim.run_sweep ~pool cfg ~seeds) = reference);
  (* ...at every pool size. *)
  check_jobs_invariant "run_sweep" (fun pool -> Netsim.Sim.run_sweep ~pool cfg ~seeds);
  (* And a contention MAC, whose per-node state is driven by the per-run
     RNG streams - the harder case for cross-run isolation. *)
  let aloha_cfg =
    { (Netsim.Sim.default_config ~mac:(Netsim.Mac.slotted_aloha ~p:0.2 ~max_backoff_exp:5)) with
      width = 8; height = 8; prototile; duration = 500 }
  in
  check_jobs_invariant "run_sweep aloha" (fun pool ->
      Netsim.Sim.run_sweep ~pool aloha_cfg ~seeds)

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map = List.map" `Quick test_map_matches_list_map;
          Alcotest.test_case "map_array indexing" `Quick test_map_array_indexing;
          Alcotest.test_case "filter/concat map" `Quick test_filter_concat_map;
          Alcotest.test_case "jobs=1 inline" `Quick test_jobs_one_inline;
          Alcotest.test_case "exception propagates" `Quick test_exception_propagates_pool_survives;
          Alcotest.test_case "re-entrant nesting" `Quick test_reentrant_nesting;
          Alcotest.test_case "shutdown idempotent" `Quick test_shutdown_idempotent_then_inline;
          Alcotest.test_case "default pool resize" `Quick test_set_default_jobs;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "lattice tilings" `Quick test_lattice_tilings_deterministic;
          Alcotest.test_case "cover_torus S/Z" `Quick test_cover_torus_deterministic;
          Alcotest.test_case "cover_torus multi" `Quick test_cover_torus_multi_prototile_deterministic;
          Alcotest.test_case "three-way engine oracle" `Quick test_three_way_engine_oracle;
          Alcotest.test_case "count = enumeration length" `Quick test_count_matches_enumeration;
          Alcotest.test_case "steal-schedule fuzzer" `Quick test_steal_schedule_fuzzer;
          Alcotest.test_case "skewed instance" `Quick test_skew_instance;
          Alcotest.test_case "chromatic number" `Quick test_chromatic_number_deterministic;
          Alcotest.test_case "ground-rule minimum" `Quick test_ground_rule_minimum_deterministic;
          Alcotest.test_case "netsim sweep" `Quick test_run_sweep_deterministic;
        ] );
    ]
