(* Tests for the schedule server: LRU cache, canonicalizing cache keys,
   orientation transport, request coalescing, backpressure, deadlines,
   the wire protocol, the line front end, and load-generator
   determinism across pool sizes. *)

open Lattice
module Cache = Server.Cache
module Protocol = Server.Protocol
module Engine = Server.Engine
module Frontend = Server.Frontend
module Loadgen = Server.Loadgen

let qc = QCheck_alcotest.to_alcotest

let tet c = Prototile.tetromino c
let v2 = Zgeom.Vec.make2

(* ---------- cache ---------- *)

let test_cache_lru () =
  let c = Cache.create ~capacity:2 in
  Cache.add c "a" 1;
  Cache.add c "b" 2;
  Alcotest.(check (option int)) "a hit" (Some 1) (Cache.find c "a");
  (* "b" is now LRU; inserting "c" evicts it. *)
  Cache.add c "c" 3;
  Alcotest.(check (option int)) "b evicted" None (Cache.find c "b");
  Alcotest.(check (option int)) "a kept" (Some 1) (Cache.find c "a");
  Alcotest.(check (option int)) "c kept" (Some 3) (Cache.find c "c");
  Alcotest.(check int) "length" 2 (Cache.length c);
  let hits, misses, evictions = Cache.counters c in
  Alcotest.(check (list int)) "counters" [ 3; 1; 1 ] [ hits; misses; evictions ]

let test_cache_replace_not_eviction () =
  let c = Cache.create ~capacity:2 in
  Cache.add c "a" 1;
  Cache.add c "a" 2;
  Cache.add c "b" 3;
  let _, _, evictions = Cache.counters c in
  Alcotest.(check int) "no eviction on replace" 0 evictions;
  Alcotest.(check (option int)) "replaced" (Some 2) (Cache.find c "a")

let test_cache_fold_lru_order () =
  let c = Cache.create ~capacity:3 in
  Cache.add c "a" 1;
  Cache.add c "b" 2;
  Cache.add c "c" 3;
  Alcotest.(check (list (pair string int)))
    "MRU first" [ ("c", 3); ("b", 2); ("a", 1) ] (Cache.to_alist c);
  (* A hit reorders; fold must see the new recency order... *)
  ignore (Cache.find c "a");
  Alcotest.(check (list (pair string int)))
    "hit promotes" [ ("a", 1); ("c", 3); ("b", 2) ] (Cache.to_alist c);
  (* ...but fold itself must not touch recency or the counters. *)
  let counters_before = Cache.counters c in
  let n = Cache.fold c ~init:0 ~f:(fun acc _ _ -> acc + 1) in
  Alcotest.(check int) "fold visits all" 3 n;
  Alcotest.(check (list (pair string int)))
    "fold left order unchanged" [ ("a", 1); ("c", 3); ("b", 2) ] (Cache.to_alist c);
  let h, m, e = counters_before and h', m', e' = Cache.counters c in
  Alcotest.(check (list int)) "counters untouched" [ h; m; e ] [ h'; m'; e' ]

(* ---------- canonical keys ---------- *)

let test_congruent_tiles_share_entry () =
  let e = Engine.create ~queue_bound:16 () in
  List.iter
    (fun tile -> ignore (Engine.handle e (Protocol.Schedule tile)))
    [ tet `S; tet `Z; tet `L; tet `J; Prototile.rect 2 3; Prototile.rect 3 2 ];
  let s = Engine.stats e in
  Alcotest.(check int) "three canonical classes" 3 s.Protocol.cache_entries;
  Alcotest.(check int) "three misses" 3 s.Protocol.cache_misses;
  Alcotest.(check int) "three hits" 3 s.Protocol.cache_hits;
  Alcotest.(check int) "three searches" 3 s.Protocol.searches

(* Every orientation of every catalogued tile must be answered with a
   valid tiling/certificate for *that* orientation, transported from the
   one cached canonical entry. *)
let orientations tile =
  let rec rots k t = if k = 0 then [] else t :: rots (k - 1) (Prototile.rot90 t) in
  rots 4 tile @ rots 4 (Prototile.reflect tile)

let test_transport_all_orientations () =
  let e = Engine.create ~queue_bound:16 () in
  List.iter
    (fun base ->
      List.iter
        (fun tile ->
          match Engine.handle e (Protocol.Tile_search tile) with
          | Protocol.Tiling_r { tiling; certificate; _ } ->
            Alcotest.(check bool)
              "tiling is for the requested orientation" true
              (Prototile.equal (Tiling.Single.prototile tiling) tile);
            (match Core.Certificate.check certificate with
            | Ok () -> ()
            | Error f ->
              Alcotest.failf "certificate rejected: %a" Core.Certificate.pp_failure f)
          | _ -> Alcotest.fail "expected a tiling")
        (orientations base))
    [ tet `S; tet `L; tet `T; Prototile.pentomino `P ];
  (* 4 canonical classes, 32 requests: 28 hits. *)
  let s = Engine.stats e in
  Alcotest.(check int) "entries" 4 s.Protocol.cache_entries;
  Alcotest.(check int) "hits" 28 s.Protocol.cache_hits

let test_slot_matches_schedule () =
  let e = Engine.create () in
  List.iter
    (fun tile ->
      let sched =
        match Engine.handle e (Protocol.Schedule tile) with
        | Protocol.Schedule_r { schedule; _ } -> schedule
        | _ -> Alcotest.fail "expected schedule"
      in
      for x = -3 to 3 do
        for y = -3 to 3 do
          match Engine.handle e (Protocol.Slot { tile; pos = v2 x y }) with
          | Protocol.Slot_r { slot; num_slots; _ } ->
            Alcotest.(check int) "m" (Prototile.size tile) num_slots;
            Alcotest.(check int) "slot" (Core.Schedule.slot_at sched (v2 x y)) slot
          | _ -> Alcotest.fail "expected slot"
        done
      done)
    [ tet `Z; Prototile.rect 3 2 ]

(* ---------- coalescing / backpressure / deadlines ---------- *)

let test_coalescing () =
  let e = Engine.create ~queue_bound:64 () in
  let reqs = List.init 10 (fun _ -> Protocol.Schedule (tet `S)) in
  let resps = Engine.handle_batch e reqs in
  Alcotest.(check int) "all answered" 10 (List.length resps);
  List.iter
    (function Protocol.Schedule_r _ -> () | _ -> Alcotest.fail "expected schedule")
    resps;
  let s = Engine.stats e in
  Alcotest.(check int) "misses" 10 s.Protocol.cache_misses;
  Alcotest.(check int) "searches" 1 s.Protocol.searches;
  Alcotest.(check int) "coalesced" 9 s.Protocol.coalesced;
  Alcotest.(check int) "entries" 1 s.Protocol.cache_entries

let test_backpressure () =
  let e = Engine.create ~queue_bound:4 () in
  let reqs = List.init 10 (fun _ -> Protocol.Schedule (tet `O)) in
  let resps = Engine.handle_batch e reqs in
  let statuses =
    List.map (function Protocol.Overloaded -> "over" | _ -> "answered") resps
  in
  Alcotest.(check (list string))
    "first queue_bound admitted, rest refused"
    (List.init 10 (fun i -> if i < 4 then "answered" else "over"))
    statuses;
  let s = Engine.stats e in
  Alcotest.(check int) "overloaded" 6 s.Protocol.overloaded;
  Alcotest.(check int) "served" 4 s.Protocol.served

let test_deadline_zero () =
  let e = Engine.create ~deadline:0.0 () in
  (match Engine.handle e (Protocol.Schedule (tet `S)) with
  | Protocol.Deadline_exceeded -> ()
  | _ -> Alcotest.fail "expected deadline");
  let s = Engine.stats e in
  Alcotest.(check int) "timeout counted" 1 s.Protocol.timeouts;
  Alcotest.(check int) "timeouts are not cached" 0 s.Protocol.cache_entries

let test_no_tiling_cached () =
  (* {0,1,3} in Z has no tiling with period <= 4*3: every difference is
     forbidden mod 6, and the mod-9/mod-12 cases die by the same residue
     arithmetic - so the bounded search proves Absent, which must be
     cached like any other result. *)
  let v1 x = Zgeom.Vec.of_list [ x ] in
  let tile = Prototile.of_cells [ v1 0; v1 1; v1 3 ] in
  let e = Engine.create () in
  let r1 = Engine.handle e (Protocol.Schedule tile) in
  let r2 = Engine.handle e (Protocol.Schedule tile) in
  (match (r1, r2) with
  | Protocol.No_tiling _, Protocol.No_tiling _ -> ()
  | _ -> Alcotest.fail "expected No_tiling twice");
  let s = Engine.stats e in
  Alcotest.(check int) "absence cached" 1 s.Protocol.cache_hits;
  Alcotest.(check int) "one search" 1 s.Protocol.searches

let test_pos_dim_mismatch () =
  let e = Engine.create () in
  match
    Engine.handle e (Protocol.Slot { tile = tet `S; pos = Zgeom.Vec.of_list [ 1; 2; 3 ] })
  with
  | Protocol.Error_r _ -> ()
  | _ -> Alcotest.fail "expected error reply"

(* ---------- protocol ---------- *)

let roundtrip_req req =
  match Protocol.request_of_string (Protocol.request_to_string ~id:7 req) with
  | Ok (Some 7, req') -> req' = req
  | _ -> false

let test_request_roundtrip () =
  List.iter
    (fun req -> Alcotest.(check bool) "roundtrip" true (roundtrip_req req))
    [ Protocol.Slot { tile = tet `S; pos = v2 3 (-4) }; Protocol.Schedule (tet `J);
      Protocol.Tile_search (Prototile.chebyshev_ball ~dim:2 1); Protocol.Stats;
      Protocol.Shutdown ]

let test_response_roundtrip () =
  let tiling =
    match Tiling.Search.find_tiling (tet `S) with
    | Some t -> t
    | None -> Alcotest.fail "S tiles"
  in
  let sched = Core.Schedule.of_tiling tiling in
  let check_rt resp ok =
    match Protocol.response_of_string (Protocol.response_to_string ~id:3 resp) with
    | Ok (Some 3, resp') -> Alcotest.(check bool) "roundtrip" true (ok resp')
    | Ok (_, _) -> Alcotest.fail "id lost"
    | Error e -> Alcotest.fail e
  in
  check_rt
    (Protocol.Slot_r { slot = 2; num_slots = 4; source = Some Protocol.Memory })
    (fun r -> r = Protocol.Slot_r { slot = 2; num_slots = 4; source = Some Protocol.Memory });
  check_rt (Protocol.Schedule_r { schedule = sched; source = None }) (function
    | Protocol.Schedule_r { schedule = s; source = None } ->
      List.for_all
        (fun v -> Core.Schedule.slot_at s v = Core.Schedule.slot_at sched v)
        (Sublattice.cosets (Core.Schedule.period sched))
    | _ -> false);
  check_rt
    (Protocol.Tiling_r
       { tiling; certificate = Core.Certificate.build tiling; source = Some Protocol.Store })
    (function
      | Protocol.Tiling_r { tiling = t; certificate; source = Some Protocol.Store } ->
        Prototile.equal (Tiling.Single.prototile t) (tet `S)
        && Core.Certificate.check certificate = Ok ()
      | _ -> false);
  check_rt (Protocol.No_tiling (Some Protocol.Fresh)) (fun r ->
      r = Protocol.No_tiling (Some Protocol.Fresh));
  check_rt (Protocol.No_tiling None) (fun r -> r = Protocol.No_tiling None);
  check_rt Protocol.Overloaded (fun r -> r = Protocol.Overloaded);
  check_rt (Protocol.Error_r "boom | pipe") (function
    | Protocol.Error_r _ -> true
    | _ -> false)

(* Lines from servers predating the store carry neither [src] nor
   [store_hits]; the decoders must accept them (absent source = [None],
   absent counter = 0). *)
let strip_field line field =
  String.split_on_char '|' line
  |> List.filter (fun kv ->
         not (String.length kv > String.length field
             && String.sub kv 0 (String.length field + 1) = field ^ "="))
  |> String.concat "|"

let test_old_format_lines_decode () =
  let line =
    Protocol.response_to_string ~id:4
      (Protocol.Slot_r { slot = 1; num_slots = 5; source = Some Protocol.Store })
  in
  let old_line = strip_field line "src" in
  Alcotest.(check bool) "src actually stripped" true (old_line <> line);
  (match Protocol.response_of_string old_line with
  | Ok (Some 4, Protocol.Slot_r { slot = 1; num_slots = 5; source = None }) -> ()
  | _ -> Alcotest.fail "pre-store slot line must decode with source = None");
  let e = Engine.create () in
  let stats_line =
    match Engine.handle e Protocol.Stats with
    | Protocol.Stats_r _ as r -> Protocol.response_to_string r
    | _ -> Alcotest.fail "expected stats"
  in
  let old_stats = strip_field stats_line "store_hits" in
  Alcotest.(check bool) "store_hits actually stripped" true (old_stats <> stats_line);
  match Protocol.response_of_string old_stats with
  | Ok (_, Protocol.Stats_r s) ->
    Alcotest.(check int) "absent store_hits defaults to 0" 0 s.Protocol.store_hits
  | _ -> Alcotest.fail "pre-store stats line must decode"

(* Decoders must be total under single-character corruption. *)
let mutate_gen line =
  let open QCheck.Gen in
  let n = String.length line in
  oneof
    [ (* substitute *)
      (let* i = int_bound (n - 1) in
       let* c = printable in
       return (String.mapi (fun j x -> if j = i then c else x) line));
      (* delete one char *)
      (let* i = int_bound (n - 1) in
       return (String.sub line 0 i ^ String.sub line (i + 1) (n - i - 1)));
      (* truncate *)
      (let* i = int_bound (n - 1) in
       return (String.sub line 0 i));
      (* swap adjacent *)
      (let* i = int_bound (max 0 (n - 2)) in
       let b = Bytes.of_string line in
       if n >= 2 then begin
         let t = Bytes.get b i in
         Bytes.set b i (Bytes.get b (i + 1));
         Bytes.set b (i + 1) t
       end;
       return (Bytes.to_string b)) ]

let test_protocol_fuzz =
  let lines =
    [ Protocol.request_to_string ~id:12 (Protocol.Slot { tile = tet `S; pos = v2 1 2 });
      Protocol.request_to_string (Protocol.Tile_search (Prototile.rect 2 3));
      Protocol.response_to_string ~id:9
        (Protocol.Slot_r { slot = 1; num_slots = 4; source = Some Protocol.Memory });
      (match Engine.handle (Engine.create ()) (Protocol.Schedule (tet `L)) with
      | Protocol.Schedule_r _ as r -> Protocol.response_to_string r
      | _ -> assert false);
      (match Engine.handle (Engine.create ()) (Protocol.Tile_search (tet `L)) with
      | Protocol.Tiling_r _ as r -> Protocol.response_to_string r
      | _ -> assert false) ]
  in
  QCheck.Test.make ~count:500 ~name:"mutated protocol lines never raise"
    QCheck.(make Gen.(oneof (List.map mutate_gen lines)))
    (fun line ->
      (match Protocol.request_of_string line with Ok _ | Error _ -> ());
      (match Protocol.response_of_string line with Ok _ | Error _ -> ());
      true)

(* ---------- front end ---------- *)

let test_handle_lines_merges_errors () =
  let e = Engine.create () in
  let good = Protocol.request_to_string ~id:1 Protocol.Stats in
  let lines, shutdown = Frontend.handle_lines e [ "garbage"; good; "also-garbage" ] in
  Alcotest.(check bool) "no shutdown" false shutdown;
  (match List.map Protocol.response_of_string lines with
  | [ Ok (None, Protocol.Error_r _); Ok (Some 1, Protocol.Stats_r _);
      Ok (None, Protocol.Error_r _) ] ->
    ()
  | _ -> Alcotest.fail "positions not preserved");
  let lines, shutdown =
    Frontend.handle_lines e [ Protocol.request_to_string Protocol.Shutdown ]
  in
  Alcotest.(check bool) "shutdown flagged" true shutdown;
  Alcotest.(check int) "one reply" 1 (List.length lines)

(* ---------- load generator ---------- *)

let small_config =
  { Loadgen.default with Loadgen.requests = 500; clients = 6; seed = 42L }

let run_at_jobs jobs config =
  Parallel.with_pool ~jobs (fun pool ->
      let e = Engine.create ~cache_capacity:64 ~queue_bound:64 ~pool () in
      Loadgen.run e config)

let deterministic_summary r = Format.asprintf "%a" Loadgen.pp_report r

let test_loadgen_deterministic_across_jobs () =
  let r1 = run_at_jobs 1 small_config in
  let r2 = run_at_jobs 2 small_config in
  let r4 = run_at_jobs 4 small_config in
  Alcotest.(check string) "jobs 1 = jobs 2" (deterministic_summary r1)
    (deterministic_summary r2);
  Alcotest.(check string) "jobs 1 = jobs 4" (deterministic_summary r1)
    (deterministic_summary r4);
  Alcotest.(check string) "checksums agree" r1.Loadgen.checksum r2.Loadgen.checksum

let test_loadgen_acceptance () =
  (* The acceptance demo: 10k skewed requests, clients under the queue
     bound: high hit rate, zero overloads, everything completes. *)
  let config = { Loadgen.default with Loadgen.seed = 7L } in
  let r = run_at_jobs 2 config in
  Alcotest.(check int) "all completed" 10_000 r.Loadgen.completed;
  Alcotest.(check int) "no overloads below the bound" 0 r.Loadgen.overloaded_replies;
  Alcotest.(check int) "no errors" 0 r.Loadgen.errors;
  Alcotest.(check bool) "hit rate above 90%" true (r.Loadgen.hit_rate > 0.9)

let test_loadgen_overload () =
  (* More clients than the queue bound: every round overflows, yet every
     request completes via retries and the refusals are explicit. *)
  let config = { small_config with Loadgen.clients = 24 } in
  let r =
    Parallel.with_pool ~jobs:2 (fun pool ->
        let e = Engine.create ~cache_capacity:64 ~queue_bound:8 ~pool () in
        Loadgen.run e config)
  in
  Alcotest.(check int) "all completed despite overload" 500 r.Loadgen.completed;
  Alcotest.(check bool) "overloads happened" true (r.Loadgen.overloaded_replies > 0);
  Alcotest.(check bool) "server never dropped silently" true
    (r.Loadgen.server.Protocol.overloaded = r.Loadgen.overloaded_replies)

let () =
  Alcotest.run "server"
    [
      ( "cache",
        [
          Alcotest.test_case "LRU eviction and counters" `Quick test_cache_lru;
          Alcotest.test_case "replace is not eviction" `Quick
            test_cache_replace_not_eviction;
          Alcotest.test_case "fold/to_alist in recency order" `Quick
            test_cache_fold_lru_order;
        ] );
      ( "canonicalization",
        [
          Alcotest.test_case "congruent tiles share an entry" `Quick
            test_congruent_tiles_share_entry;
          Alcotest.test_case "transport to all 8 orientations" `Slow
            test_transport_all_orientations;
          Alcotest.test_case "slot agrees with schedule" `Quick
            test_slot_matches_schedule;
        ] );
      ( "engine",
        [
          Alcotest.test_case "identical misses coalesce" `Quick test_coalescing;
          Alcotest.test_case "backpressure beyond queue bound" `Quick test_backpressure;
          Alcotest.test_case "deadline 0 answers Deadline_exceeded" `Quick
            test_deadline_zero;
          Alcotest.test_case "no-tiling results are cached" `Slow test_no_tiling_cached;
          Alcotest.test_case "pos dimension mismatch" `Quick test_pos_dim_mismatch;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "request roundtrip" `Quick test_request_roundtrip;
          Alcotest.test_case "response roundtrip" `Quick test_response_roundtrip;
          Alcotest.test_case "pre-store lines still decode" `Quick
            test_old_format_lines_decode;
          qc test_protocol_fuzz;
        ] );
      ( "frontend",
        [
          Alcotest.test_case "handle_lines merges parse errors" `Quick
            test_handle_lines_merges_errors;
        ] );
      ( "loadgen",
        [
          Alcotest.test_case "deterministic across -j" `Slow
            test_loadgen_deterministic_across_jobs;
          Alcotest.test_case "acceptance: 10k skewed requests" `Slow
            test_loadgen_acceptance;
          Alcotest.test_case "overload: explicit refusals, no drops" `Quick
            test_loadgen_overload;
        ] );
    ]
