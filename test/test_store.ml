(* Tests for the persistent certificate store: free-polyomino
   enumeration (the offline producer's domain), log roundtrips and
   supersede/compaction semantics, crash-recovery under truncation and
   bit-flip corruption, and the engine's store tier (source markers,
   warm-start without searches). *)

open Lattice
module Protocol = Server.Protocol
module Engine = Server.Engine

let tet c = Prototile.tetromino c
let v2 = Zgeom.Vec.make2

let with_temp_store f =
  let path = Filename.temp_file "tilesched-store" ".log" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let found_entry tile =
  match Tiling.Search.find_tiling tile with
  | Some tiling -> Store.Found { tiling; certificate = Core.Certificate.build tiling }
  | None -> Alcotest.failf "expected a tiling for a %d-cell tile" (Prototile.size tile)

(* ---------- enumeration (OEIS A000105) ---------- *)

let test_enumerate_counts () =
  List.iteri
    (fun i expected ->
      let n = i + 1 in
      Alcotest.(check int)
        (Printf.sprintf "free polyominoes of area %d" n)
        expected
        (List.length (Polyomino.enumerate_free n)))
    [ 1; 1; 2; 5; 12; 35; 108 ]

let test_enumerate_canonical_reps () =
  List.iter
    (fun n ->
      let tiles = Polyomino.enumerate_free n in
      List.iter
        (fun tile ->
          Alcotest.(check int) "area" n (Prototile.size tile);
          Alcotest.(check bool) "connected polyomino" true (Polyomino.is_polyomino tile);
          Alcotest.(check bool)
            "is its own canonical representative" true
            (Prototile.equal tile (Symmetry.canonical tile)))
        tiles;
      let distinct = List.sort_uniq Prototile.compare tiles in
      Alcotest.(check int) "no duplicate classes" (List.length tiles) (List.length distinct))
    [ 1; 2; 3; 4; 5 ]

(* ---------- log roundtrip / supersede / compaction ---------- *)

let test_crc32_vector () =
  (* The classic IEEE 802.3 check value. *)
  Alcotest.(check int32) "crc32(123456789)" 0xCBF43926l (Store.crc32 "123456789")

let test_roundtrip_supersede_compact () =
  with_temp_store (fun path ->
      let canon = Symmetry.canonical (tet `S) in
      let key = Store.key_of_prototile canon in
      let one = Prototile.of_cells [ v2 0 0 ] in
      let kone = Store.key_of_prototile one in
      let store = Store.open_ path in
      Store.put store key Store.No_tiling;
      Store.put store key (found_entry canon) (* supersedes the record above *);
      Store.put store kone Store.No_tiling;
      Alcotest.(check int) "live entries" 2 (Store.length store);
      Store.close store;
      let store = Store.open_ path in
      let r = Store.recovery store in
      Alcotest.(check int) "all three frames replayed" 3 r.Store.records;
      Alcotest.(check int) "two live keys" 2 r.Store.live;
      Alcotest.(check int) "nothing dropped" 0 r.Store.dropped;
      Alcotest.(check int) "nothing truncated" 0 r.Store.truncated_bytes;
      (match Store.find store key with
      | Some (Store.Found { tiling; certificate }) ->
        Alcotest.(check bool)
          "later record supersedes" true
          (Prototile.equal (Tiling.Single.prototile tiling) canon);
        Alcotest.(check bool) "certificate checks" true
          (Core.Certificate.check certificate = Ok ())
      | _ -> Alcotest.fail "expected the superseding Found record");
      (match Store.find store kone with
      | Some Store.No_tiling -> ()
      | _ -> Alcotest.fail "No_tiling record lost across reopen");
      Store.compact store;
      Store.close store;
      let store = Store.open_ path in
      let r = Store.recovery store in
      Alcotest.(check int) "compaction dropped the dead frame" 2 r.Store.records;
      Alcotest.(check int) "live set preserved" 2 r.Store.live;
      let keys = Store.fold store ~init:[] ~f:(fun acc k _ -> k :: acc) in
      Alcotest.(check (list string))
        "fold in ascending key order"
        (List.sort compare [ key; kone ])
        (List.rev keys);
      Store.close store)

let test_put_validation () =
  with_temp_store (fun path ->
      let store = Store.open_ path in
      let canon = Symmetry.canonical (tet `S) in
      let rotated = Prototile.rot90 canon in
      Alcotest.(check bool)
        "rotated S is not canonical" false
        (Prototile.equal rotated (Symmetry.canonical rotated));
      (* A Found entry must be keyed by its own canonical orientation. *)
      (match Store.put store (Store.key_of_prototile rotated) (found_entry rotated) with
      | () -> Alcotest.fail "expected Invalid_argument for a non-canonical tiling"
      | exception Invalid_argument _ -> ());
      (match Store.put store "0,0;9,9" (found_entry canon) with
      | () -> Alcotest.fail "expected Invalid_argument for a mismatched key"
      | exception Invalid_argument _ -> ());
      Alcotest.(check int) "nothing stored" 0 (Store.length store);
      Store.close store)

let test_auto_compaction () =
  with_temp_store (fun path ->
      let store = Store.open_ ~auto_compact_ratio:0.5 path in
      let one = Prototile.of_cells [ v2 0 0 ] in
      let key = Store.key_of_prototile one in
      (* Rewrite one key many times: dead records pile up and must
         trigger a snapshot without being asked. *)
      for _ = 1 to 64 do
        Store.put store key Store.No_tiling
      done;
      Alcotest.(check bool) "auto-compacted" true (Store.compactions store > 0);
      Alcotest.(check int) "one live key" 1 (Store.length store);
      Store.close store;
      let store = Store.open_ path in
      Alcotest.(check bool)
        "log shrank to the live set"
        true
        ((Store.recovery store).Store.records < 64);
      Store.close store)

(* ---------- crash recovery ---------- *)

(* A small but representative log: one Found tetromino, one Found
   singleton, one No_tiling. *)
let sample_log_bytes () =
  let path = Filename.temp_file "tilesched-store" ".log" in
  let store = Store.open_ path in
  let put tile entry = Store.put store (Store.key_of_prototile tile) entry in
  let s = Symmetry.canonical (tet `S) in
  let one = Prototile.of_cells [ v2 0 0 ] in
  let bar = Symmetry.canonical (Prototile.of_cells [ v2 0 0; v2 1 0 ]) in
  put s (found_entry s);
  put one (found_entry one);
  put bar Store.No_tiling;
  Store.close store;
  let data = read_file path in
  Sys.remove path;
  data

let test_truncation_every_offset () =
  let data = sample_log_bytes () in
  let n = String.length data in
  with_temp_store (fun path ->
      let last_records = ref (-1) in
      for k = 0 to n do
        write_file path (String.sub data 0 k);
        let store = Store.open_ path (* must never raise *) in
        let r = Store.recovery store in
        Alcotest.(check int) "CRC-valid prefixes never drop records" 0 r.Store.dropped;
        if k = n then
          Alcotest.(check int) "full log replays everything" 3 r.Store.records;
        (* Longest-valid-prefix: the record count is monotone in the
           prefix length. *)
        if r.Store.records < !last_records then
          Alcotest.failf "records went backwards at offset %d" k;
        last_records := max !last_records r.Store.records;
        Store.close store;
        (* The repair truncated the torn tail: a reopen is clean. *)
        let store = Store.open_ path in
        let r2 = Store.recovery store in
        Alcotest.(check int) "reopen after repair is clean" 0 r2.Store.truncated_bytes;
        Alcotest.(check int) "repair kept every valid record" r.Store.records r2.Store.records;
        Store.close store
      done)

let test_bitflip_never_served_invalid () =
  let data = sample_log_bytes () in
  let n = String.length data in
  with_temp_store (fun path ->
      for i = 0 to n - 1 do
        for bit = 0 to 7 do
          let b = Bytes.of_string data in
          Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
          write_file path (Bytes.to_string b);
          let store = Store.open_ path (* must never raise *) in
          (* Whatever survived recovery must be trustworthy: every
             Found entry re-checked, no corrupt certificate served. *)
          Store.fold store ~init:() ~f:(fun () key entry ->
              match entry with
              | Store.No_tiling -> ()
              | Store.Found { tiling; certificate } ->
                Alcotest.(check bool)
                  "served key matches tiling" true
                  (String.equal key
                     (Store.key_of_prototile (Tiling.Single.prototile tiling)));
                Alcotest.(check bool)
                  "served certificate checks" true
                  (Core.Certificate.check certificate = Ok ()));
          Store.close store
        done
      done)

(* ---------- engine integration ---------- *)

let test_engine_source_tiers () =
  with_temp_store (fun path ->
      let store = Store.open_ path in
      let e = Engine.create ~store () in
      (match Engine.handle e (Protocol.Tile_search (tet `S)) with
      | Protocol.Tiling_r { source = Some Protocol.Fresh; _ } -> ()
      | _ -> Alcotest.fail "first contact must be fresh");
      (match Engine.handle e (Protocol.Tile_search (tet `Z)) with
      | Protocol.Tiling_r { source = Some Protocol.Memory; _ } -> ()
      | _ -> Alcotest.fail "congruent follow-up must hit memory");
      Store.close store;
      (* Restart: the memory tier is gone, the store is not. *)
      let store = Store.open_ path in
      let e2 = Engine.create ~store () in
      (match Engine.handle e2 (Protocol.Tile_search (tet `Z)) with
      | Protocol.Tiling_r { source = Some Protocol.Store; _ } -> ()
      | _ -> Alcotest.fail "after restart the store answers");
      (match Engine.handle e2 (Protocol.Tile_search (tet `S)) with
      | Protocol.Tiling_r { source = Some Protocol.Memory; _ } -> ()
      | _ -> Alcotest.fail "store hit was promoted into memory");
      let s = Engine.stats e2 in
      Alcotest.(check int) "no searches after restart" 0 s.Protocol.searches;
      Alcotest.(check int) "one store hit" 1 s.Protocol.store_hits;
      Store.close store)

let orientations tile =
  let rec rots k t = if k = 0 then [] else t :: rots (k - 1) (Prototile.rot90 t) in
  rots 4 tile @ rots 4 (Prototile.reflect tile)

let test_warm_store_answers_without_search () =
  with_temp_store (fun path ->
      let store = Store.open_ path in
      let report = Store.Precompute.run ~store ~max_area:4 () in
      Alcotest.(check int) "canonical classes up to area 4" 9 report.Store.Precompute.classes;
      Alcotest.(check int) "nothing skipped on a fresh store" 0 report.Store.Precompute.skipped;
      Store.close store;
      (* The acceptance bar: a fresh daemon on the warmed store answers
         every area-<=4 query, in any orientation, without searching. *)
      let store = Store.open_ path in
      let e = Engine.create ~store () in
      List.iter
        (fun tile ->
          List.iter
            (fun o ->
              match Engine.handle e (Protocol.Tile_search o) with
              | Protocol.Tiling_r { source = Some (Protocol.Store | Protocol.Memory); _ }
              | Protocol.No_tiling (Some (Protocol.Store | Protocol.Memory)) ->
                ()
              | Protocol.Tiling_r { source; _ } | Protocol.No_tiling source ->
                Alcotest.failf "unexpected source %s"
                  (match source with
                  | Some s -> Protocol.source_to_string s
                  | None -> "none")
              | _ -> Alcotest.fail "expected a tile verdict")
            (orientations tile))
        (Store.Precompute.tiles_up_to 4);
      let s = Engine.stats e in
      Alcotest.(check int) "zero searches on a warm store" 0 s.Protocol.searches;
      Alcotest.(check bool) "store tier was exercised" true (s.Protocol.store_hits > 0);
      Store.close store)

let test_precompute_skips_settled () =
  with_temp_store (fun path ->
      let store = Store.open_ path in
      let r1 = Store.Precompute.run ~store ~max_area:3 () in
      let r2 = Store.Precompute.run ~store ~max_area:3 () in
      Alcotest.(check int) "first run settles everything" 0 r1.Store.Precompute.skipped;
      Alcotest.(check int) "second run searches nothing"
        r2.Store.Precompute.classes r2.Store.Precompute.skipped;
      Alcotest.(check int) "no new tilings" 0 r2.Store.Precompute.found;
      Store.close store)

let test_flush_to_store () =
  with_temp_store (fun path ->
      let store = Store.open_ path in
      let e = Engine.create ~store () in
      ignore (Engine.handle e (Protocol.Tile_search (tet `S)));
      (* Write-through already persisted the search result. *)
      Alcotest.(check int) "nothing left to flush" 0 (Engine.flush_to_store e);
      Store.close store);
  let e = Engine.create () in
  ignore (Engine.handle e (Protocol.Tile_search (tet `S)));
  Alcotest.(check int) "no store, no flush" 0 (Engine.flush_to_store e)

let () =
  Alcotest.run "store"
    [
      ( "enumeration",
        [
          Alcotest.test_case "A000105 counts, n = 1..7" `Slow test_enumerate_counts;
          Alcotest.test_case "canonical, connected, distinct" `Quick
            test_enumerate_canonical_reps;
        ] );
      ( "log",
        [
          Alcotest.test_case "crc32 check value" `Quick test_crc32_vector;
          Alcotest.test_case "roundtrip, supersede, compaction" `Quick
            test_roundtrip_supersede_compact;
          Alcotest.test_case "put rejects non-canonical records" `Quick test_put_validation;
          Alcotest.test_case "dead records trigger auto-compaction" `Quick
            test_auto_compaction;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "truncation at every byte offset" `Slow
            test_truncation_every_offset;
          Alcotest.test_case "bit flips never serve invalid data" `Slow
            test_bitflip_never_served_invalid;
        ] );
      ( "engine",
        [
          Alcotest.test_case "memory / store / fresh source tiers" `Quick
            test_engine_source_tiers;
          Alcotest.test_case "warm store answers without searching" `Slow
            test_warm_store_answers_without_search;
          Alcotest.test_case "precompute skips settled classes" `Quick
            test_precompute_skips_settled;
          Alcotest.test_case "flush_to_store is a no-op after write-through" `Quick
            test_flush_to_store;
        ] );
    ]
