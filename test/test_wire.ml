(* Tests for the binary wire protocol and the epoll socket server:
   frame round-trips for every message type, decoder totality under
   truncation and bit flips, protocol sniffing (both dialects through
   one socket), corrupt-frame connection isolation, and the
   fd-leak-on-abrupt-disconnect regression. *)

open Lattice
module Protocol = Server.Protocol
module Wire = Server.Wire
module Engine = Server.Engine
module Frontend = Server.Frontend

let qc = QCheck_alcotest.to_alcotest

let tet c = Prototile.tetromino c
let v2 = Zgeom.Vec.make2

(* ---------- sample frames, one per message type ---------- *)

let sample_requests : (int option * Protocol.request) list =
  [ (Some 0, Protocol.Slot { tile = tet `S; pos = v2 1 2 });
    (None, Protocol.Slot { tile = Prototile.rect 2 2; pos = v2 (-3) 7 });
    (Some 42, Protocol.Schedule (tet `L));
    (Some 7, Protocol.Tile_search (Prototile.rect 2 3));
    (None, Protocol.Tile_search (tet `T));
    (Some 0xFFFFFFFE, Protocol.Stats);
    (None, Protocol.Shutdown) ]

let engine_response req =
  Engine.handle (Engine.create ()) req

let sample_responses : (int option * Protocol.response) list =
  let tiling_r = engine_response (Protocol.Tile_search (tet `L)) in
  let schedule_r = engine_response (Protocol.Schedule (tet `S)) in
  let stats_r = engine_response Protocol.Stats in
  let fragment =
    match tiling_r with
    | Protocol.Tiling_r { tiling; _ } -> Protocol.tiling_fragment tiling
    | _ -> Alcotest.fail "engine did not find a tiling for the L tetromino"
  in
  [ (Some 1, Protocol.Slot_r { slot = 1; num_slots = 4; source = Some Protocol.Memory });
    (None, Protocol.Slot_r { slot = 0; num_slots = 1; source = None });
    (Some 2, schedule_r);
    (Some 3, tiling_r);
    (Some 4, Protocol.Tiling_raw_r { tiling_fields = fragment; source = Some Protocol.Corpus });
    (Some 5, stats_r);
    (Some 6, Protocol.No_tiling (Some Protocol.Store));
    (None, Protocol.No_tiling None);
    (Some 8, Protocol.Overloaded);
    (Some 9, Protocol.Deadline_exceeded);
    (None, Protocol.Shutting_down);
    (Some 10, Protocol.Error_r "boom | with = separators \x00 and bytes") ]

(* Tiling replies share one opcode and decode structurally to
   [Tiling_raw_r]; normalize both sides to raw form for comparison. *)
let normalize_response (r : Protocol.response) : Protocol.response =
  match r with
  | Protocol.Tiling_r { tiling; certificate = _; source } ->
    Protocol.Tiling_raw_r
      { tiling_fields = Protocol.tiling_fragment tiling; source }
  | r -> r

let response_eq a b =
  (* [Stats_r] and friends are plain data; tilings were normalized to
     their canonical fragment strings, so structural equality is exact. *)
  normalize_response a = normalize_response b

let test_request_roundtrip () =
  List.iter
    (fun (id, req) ->
      let frame = Wire.encode_request ?id req in
      match Wire.decode_request frame with
      | Error e -> Alcotest.failf "request frame rejected: %s" e
      | Ok (id', req') ->
        Alcotest.(check (option int)) "id survives" id id';
        Alcotest.(check string) "request survives"
          (Protocol.request_to_string req)
          (Protocol.request_to_string req'))
    sample_requests

let test_response_roundtrip () =
  List.iter
    (fun (id, resp) ->
      let frame = Wire.encode_response ?id resp in
      match Wire.decode_response frame with
      | Error e -> Alcotest.failf "response frame rejected: %s" e
      | Ok (id', resp') ->
        Alcotest.(check (option int)) "id survives" id id';
        Alcotest.(check bool) "response survives" true (response_eq resp resp'))
    sample_responses

let all_frames =
  lazy
    (List.map (fun (id, r) -> Wire.encode_request ?id r) sample_requests
    @ List.map (fun (id, r) -> Wire.encode_response ?id r) sample_responses)

(* Both decoders on arbitrary bytes: any result is fine, raising is
   not. *)
let decode_total s =
  (match Wire.decode_request s with Ok _ | Error _ -> ());
  (match Wire.decode_response s with Ok _ | Error _ -> ())

let test_truncation_every_offset () =
  List.iter
    (fun frame ->
      let n = String.length frame in
      for i = 0 to n - 1 do
        let prefix = String.sub frame 0 i in
        decode_total prefix;
        (match Wire.decode_request prefix with
        | Ok _ -> Alcotest.failf "truncated frame (%d/%d bytes) accepted" i n
        | Error _ -> ());
        match Wire.decode_response prefix with
        | Ok _ -> Alcotest.failf "truncated frame (%d/%d bytes) accepted" i n
        | Error _ -> ()
      done)
    (Lazy.force all_frames)

let test_bitflip_every_bit () =
  (* CRC32 detects every single-bit error, and header flips trip the
     magic/version/length checks, so no flipped frame may decode. *)
  List.iter
    (fun frame ->
      let n = String.length frame in
      for i = 0 to n - 1 do
        for bit = 0 to 7 do
          let b = Bytes.of_string frame in
          Bytes.set b i (Char.chr (Char.code frame.[i] lxor (1 lsl bit)));
          let mutated = Bytes.to_string b in
          decode_total mutated;
          (match Wire.decode_request mutated with
          | Ok _ -> Alcotest.failf "bit flip at byte %d bit %d accepted" i bit
          | Error _ -> ());
          match Wire.decode_response mutated with
          | Ok _ -> Alcotest.failf "bit flip at byte %d bit %d accepted" i bit
          | Error _ -> ()
        done
      done)
    (Lazy.force all_frames)

(* Random mutations (substitutions, deletions, splices across frames)
   on top of the exhaustive single-fault sweeps above. *)
let test_fuzz_mutations =
  let frames = Lazy.force all_frames in
  let gen =
    let open QCheck.Gen in
    let* frame = oneofl frames in
    let n = String.length frame in
    oneof
      [ (let* i = int_bound (n - 1) in
         let* c = char in
         return (String.mapi (fun j x -> if j = i then c else x) frame));
        (let* i = int_bound (n - 1) in
         return (String.sub frame 0 i ^ String.sub frame (i + 1) (n - i - 1)));
        (let* other = oneofl frames in
         let* i = int_bound (n - 1) in
         return (String.sub frame 0 i ^ other));
        (let* len = int_bound 64 in
         string_size (return len)) ]
  in
  QCheck.Test.make ~count:2_000 ~name:"mutated binary frames never raise"
    (QCheck.make gen)
    (fun s ->
      decode_total s;
      let b = Bytes.of_string s in
      (match Wire.frame_total b ~off:0 ~avail:(Bytes.length b) with
      | Wire.Need_more | Wire.Total _ | Wire.Bad_frame _ -> ());
      true)

let test_header_peeks () =
  let frame = Wire.encode_request ~id:11 Protocol.Stats in
  Alcotest.(check bool) "crc ok on valid frame" true (Wire.frame_crc_ok frame);
  Alcotest.(check (option int)) "id peek" (Some 11) (Wire.frame_id frame);
  let anon = Wire.encode_request Protocol.Stats in
  Alcotest.(check (option int)) "anonymous id peek" None (Wire.frame_id anon);
  let b = Bytes.of_string frame in
  Bytes.set b (Bytes.length b - 1)
    (Char.chr (Char.code (Bytes.get b (Bytes.length b - 1)) lxor 1));
  Alcotest.(check bool) "crc catches trailer flip" false
    (Wire.frame_crc_ok (Bytes.to_string b))

(* ---------- socket server ---------- *)

let sock_counter = ref 0

let with_server f =
  incr sock_counter;
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "tilesched-wire-%d-%d.sock" (Unix.getpid ()) !sock_counter)
  in
  let engine = Engine.create () in
  let d = Domain.spawn (fun () -> Frontend.serve_unix engine ~path) in
  let rec await n =
    let ready =
      Sys.file_exists path
      &&
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match Unix.connect fd (Unix.ADDR_UNIX path) with
      | () ->
        Unix.close fd;
        true
      | exception Unix.Unix_error _ ->
        Unix.close fd;
        false
    in
    if ready then ()
    else if n = 0 then Alcotest.fail "server did not come up"
    else begin
      ignore (Unix.select [] [] [] 0.02);
      await (n - 1)
    end
  in
  await 250;
  Fun.protect
    ~finally:(fun () ->
      (try
         Frontend.with_connection ~path (fun send ->
             ignore (send [ Protocol.request_to_string Protocol.Shutdown ]))
       with _ -> ());
      Domain.join d)
    (fun () -> f path)

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  fd

let write_all fd s =
  let b = Bytes.of_string s in
  let rec go off =
    if off < Bytes.length b then
      go (off + Unix.write fd b off (Bytes.length b - off))
  in
  go 0

let really_read fd buf off len =
  let rec go off len =
    if len > 0 then begin
      let n = Unix.read fd buf off len in
      if n = 0 then Alcotest.fail "unexpected EOF mid-frame";
      go (off + n) (len - n)
    end
  in
  go off len

let read_frame fd =
  let hdr = Bytes.create Wire.header_size in
  really_read fd hdr 0 Wire.header_size;
  match Wire.frame_total hdr ~off:0 ~avail:Wire.header_size with
  | Wire.Total total ->
    let rest = Bytes.create (total - Wire.header_size) in
    really_read fd rest 0 (total - Wire.header_size);
    Bytes.to_string hdr ^ Bytes.to_string rest
  | Wire.Need_more | Wire.Bad_frame _ -> Alcotest.fail "bad frame head"

let test_sniff_both_dialects () =
  let req = Protocol.Slot { tile = tet `T; pos = v2 3 1 } in
  (* Reference reply from a fresh engine: the served bytes must match
     it exactly, proving text clients are untouched by the new
     transport. *)
  let expected = Protocol.response_to_string ~id:5 (engine_response req) in
  with_server (fun path ->
      let got =
        Frontend.with_connection ~path (fun send ->
            send [ Protocol.request_to_string ~id:5 req ])
      in
      Alcotest.(check (list string)) "text reply byte-identical" [ expected ] got;
      (match Frontend.with_binary_connection ~path (fun send -> send [ req ]) with
      | [ Ok (Some 0, Protocol.Slot_r { slot; num_slots; _ }) ] -> (
        match engine_response req with
        | Protocol.Slot_r { slot = s; num_slots = n; _ } ->
          Alcotest.(check int) "binary slot" s slot;
          Alcotest.(check int) "binary num_slots" n num_slots
        | _ -> Alcotest.fail "reference engine did not answer Slot_r")
      | _ -> Alcotest.fail "binary dialect through the same socket failed");
      (* Text again, after a binary connection came and went. *)
      match
        Frontend.with_connection ~path (fun send ->
            send [ Protocol.request_to_string ~id:9 Protocol.Stats ])
      with
      | [ line ] -> (
        match Protocol.response_of_string line with
        | Ok (Some 9, Protocol.Stats_r _) -> ()
        | _ -> Alcotest.fail "text after binary must still parse")
      | _ -> Alcotest.fail "expected one reply line")

let test_corrupt_frame_isolation () =
  with_server (fun path ->
      let a = connect path and b = connect path in
      Unix.setsockopt_float a Unix.SO_RCVTIMEO 10.0;
      Unix.setsockopt_float b Unix.SO_RCVTIMEO 10.0;
      write_all a (Wire.encode_request ~id:1 Protocol.Stats);
      (match Wire.decode_response (read_frame a) with
      | Ok (Some 1, Protocol.Stats_r _) -> ()
      | _ -> Alcotest.fail "expected stats reply on connection A");
      (* One flipped CRC bit on B: the server must close B... *)
      let f = Bytes.of_string (Wire.encode_request ~id:2 Protocol.Stats) in
      let last = Bytes.length f - 1 in
      Bytes.set f last (Char.chr (Char.code (Bytes.get f last) lxor 0x01));
      write_all b (Bytes.to_string f);
      let buf = Bytes.create 1 in
      (match Unix.read b buf 0 1 with
      | 0 -> ()
      | _ -> Alcotest.fail "server answered a corrupt frame"
      | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> ());
      Unix.close b;
      (* ...and only B: A keeps working. *)
      write_all a (Wire.encode_request ~id:3 Protocol.Stats);
      (match Wire.decode_response (read_frame a) with
      | Ok (Some 3, Protocol.Stats_r _) -> ()
      | _ -> Alcotest.fail "connection A died with B");
      Unix.close a)

let fd_count () = Array.length (Sys.readdir "/proc/self/fd")

let test_fd_leak_regression () =
  (* 100 connect / abrupt-kill cycles, some mid-line, some mid-frame:
     the process fd count must return to its baseline. *)
  with_server (fun path ->
      let cycle i =
        let fd = connect path in
        (match i mod 3 with
        | 0 -> ()  (* connect and vanish before the sniff byte *)
        | 1 -> write_all fd "t"  (* half a text line *)
        | _ ->
          let frame = Wire.encode_request ~id:i Protocol.Stats in
          write_all fd (String.sub frame 0 (String.length frame - 2)));
        Unix.close fd
      in
      cycle 0;
      ignore (Unix.select [] [] [] 0.3);
      let baseline = fd_count () in
      for i = 1 to 100 do
        cycle i
      done;
      let rec wait n =
        if fd_count () > baseline then
          if n = 0 then
            Alcotest.failf "fd count %d stuck above baseline %d" (fd_count ())
              baseline
          else begin
            ignore (Unix.select [] [] [] 0.1);
            wait (n - 1)
          end
      in
      wait 50)

let test_sigpipe_reply_in_flight () =
  (* Pipeline thousands of requests and read none of the replies: they
     overflow the server's socket buffer into its output queue, leaving
     write interest armed.  Closing then makes the connection's next
     event writable+hangup, so [flush_out] writev's into the dead peer
     before any read can observe EOF.  That must surface as EPIPE
     (connection closed), never as SIGPIPE — which, unignored, would
     kill the server domain and this whole test binary with it. *)
  with_server (fun path ->
      let fd = connect path in
      (* 30k pipelined stats: ~600 KB of replies — past the ~208 KB
         socket buffer (so output queues server-side) yet below the
         1 MiB backpressure watermark (so every request is read). *)
      let buf = Buffer.create (1 lsl 19) in
      for i = 1 to 30_000 do
        Buffer.add_string buf (Wire.encode_request ~id:i Protocol.Stats)
      done;
      write_all fd (Buffer.contents buf);
      (* Give the server time to back its reply queue up behind us. *)
      ignore (Unix.select [] [] [] 0.3);
      Unix.close fd;
      ignore (Unix.select [] [] [] 0.2);
      let fd = connect path in
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.0;
      write_all fd (Wire.encode_request ~id:0 Protocol.Stats);
      (match Wire.decode_response (read_frame fd) with
      | Ok (Some 0, Protocol.Stats_r _) -> ()
      | _ -> Alcotest.fail "server unresponsive after reply-in-flight close");
      Unix.close fd)

let () =
  Alcotest.run "wire"
    [
      ( "codec",
        [
          Alcotest.test_case "every request type round-trips" `Quick
            test_request_roundtrip;
          Alcotest.test_case "every response type round-trips" `Quick
            test_response_roundtrip;
          Alcotest.test_case "header peeks" `Quick test_header_peeks;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "truncation at every byte offset" `Quick
            test_truncation_every_offset;
          Alcotest.test_case "every single-bit flip is rejected" `Quick
            test_bitflip_every_bit;
          qc test_fuzz_mutations;
        ] );
      ( "socket",
        [
          Alcotest.test_case "sniff: both dialects, one socket" `Quick
            test_sniff_both_dialects;
          Alcotest.test_case "corrupt frame kills only its connection" `Quick
            test_corrupt_frame_isolation;
          Alcotest.test_case "no fd leak after 100 abrupt disconnects" `Quick
            test_fd_leak_regression;
          Alcotest.test_case "reply to a dead peer never raises SIGPIPE"
            `Quick test_sigpipe_reply_in_flight;
        ] );
    ]
